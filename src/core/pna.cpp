#include "core/pna.hpp"

#include <algorithm>
#include <stdexcept>

namespace oddci::core {

PnaXlet::PnaXlet(const PnaEnvironment& environment, std::uint64_t seed)
    : env_(&environment), rng_(seed), alive_(std::make_shared<bool>(true)) {
  if (env_->content_store == nullptr) {
    throw std::invalid_argument("PnaXlet: null content store");
  }
}

PnaXlet::~PnaXlet() { *alive_ = false; }

std::uint64_t PnaXlet::pna_id() const {
  return context_ != nullptr ? context_->receiver().node_id() : 0;
}

obs::TraceContext PnaXlet::trace_emit(obs::TraceEventKind kind,
                                      obs::TraceContext parent,
                                      std::uint64_t arg) {
  if (env_->recorder == nullptr) return {};
  return env_->recorder->emit(context_->simulation().now(), kind,
                             obs::TraceComponent::kPna, parent, pna_id(),
                             arg);
}

void PnaXlet::init_xlet(dtv::XletContext& context) { context_ = &context; }

void PnaXlet::start_xlet() {
  if (context_ == nullptr) {
    throw std::logic_error("PnaXlet: started before init");
  }
  started_ = true;
  hung_ = false;
  context_->receiver().set_message_handler(
      [this](net::NodeId from, const net::MessagePtr& msg) {
        on_direct_message(from, msg);
      });
  // The carousel generation that delivered this Xlet also carries the
  // configuration file; acquire it.
  acquire_config();
}

void PnaXlet::pause_xlet() {
  started_ = false;
  context_->receiver().clear_message_handler();
}

void PnaXlet::destroy_xlet(bool /*unconditional*/) {
  *alive_ = false;
  started_ = false;
  pace_pending_ = false;
  if (heartbeat_running_) {
    heartbeat_.cancel();
    heartbeat_running_ = false;
  }
  if (running_exec_) {
    context_->receiver().cancel_execution(*running_exec_);
    running_exec_.reset();
  }
  // Teardown with a task in flight (e.g. a channel change destroying the
  // Xlet): hand the task back like a reset does. If the receiver is being
  // powered off the send is dropped, and the Backend's timeout covers it.
  if (running_task_ && dve_ && backend_node_ != net::kInvalidNode &&
      context_ != nullptr) {
    context_->receiver().send(
        backend_node_,
        std::make_shared<TaskAbortMessage>(dve_->instance(), *running_task_,
                                           pna_id(), running_task_ctx_,
                                           running_replica_));
    running_task_.reset();
  }
  if (context_ != nullptr) {
    context_->receiver().clear_message_handler();
  }
  dve_.reset();
  pending_join_.reset();
  pending_result_.reset();
}

void PnaXlet::on_carousel_update(const broadcast::CarouselSnapshot&) {
  if (!started_) return;
  acquire_config();
}

void PnaXlet::acquire_config() {
  if (hung_) return;
  // Module-version dedupe (DSM-CC semantics): the launch signalling
  // triggers two acquisition attempts for the same configuration
  // generation — once from startXlet and once from the carousel-update
  // notification. Real receivers keep assembling the module they are
  // already reading and only restart on a module-version bump, so a
  // generation we have handled — or are currently reading — is not read
  // again. Skipping at issue time (not completion) matters at scale: a
  // million agents launching at once would otherwise each hold two
  // in-flight carousel reads for the length of a cycle.
  if (const broadcast::CarouselSnapshot* on_air =
          context_->current_carousel()) {
    if (const broadcast::CarouselFile* announced =
            on_air->find(env_->config_file)) {
      if (announced->content_id == last_handled_content_ ||
          announced->content_id == pending_read_content_) {
        return;
      }
      pending_read_content_ = announced->content_id;
    }
  }
  std::weak_ptr<bool> alive = alive_;
  context_->read_carousel_file(
      env_->config_file,
      [this, alive](bool ok, const broadcast::CarouselFile& file) {
        auto guard = alive.lock();
        if (!guard || !*guard || !started_) return;
        if (!ok) {
          // Allow a retry of this generation (power/tune interrupted it).
          pending_read_content_ = 0;
          return;
        }
        // Completion-side belt-and-braces for readers that raced a
        // generation change between issue and delivery.
        if (file.content_id == last_handled_content_) return;
        last_handled_content_ = file.content_id;
        if (env_->verify_cache != nullptr) {
          // Fast path: the population shares one immutable decoded message
          // (canonical bytes + digest computed once per broadcast).
          const PreparedControlPtr control =
              env_->content_store->get_control_shared(file.content_id);
          if (!control) return;
          handle_control(*control);
          return;
        }
        // Decode the configuration file's wire bytes, as a real agent
        // parses the carousel module it assembled.
        const std::optional<ControlMessage> control =
            env_->content_store->get_control(file.content_id);
        if (!control) return;
        handle_control(*control);
      });
}

void PnaXlet::handle_control(const ControlMessage& message) {
  ++stats_.control_messages_seen;
  if (env_->counters != nullptr) ++env_->counters->control_messages_seen;
  // Accept only messages signed by the associated Controller.
  if (!message.verify_with(env_->trusted_key)) {
    ++stats_.signature_failures;
    if (env_->counters != nullptr) ++env_->counters->signature_failures;
    return;
  }
  dispatch_control(message);
}

void PnaXlet::handle_control(const PreparedControl& prepared) {
  ++stats_.control_messages_seen;
  if (env_->counters != nullptr) ++env_->counters->control_messages_seen;
  // Same acceptance rule as the slow path, resolved against the shared
  // canonical bytes — memoized across the population when a cache is
  // attached, so the broadcast hashes once instead of once per agent.
  const bool accepted =
      env_->verify_cache != nullptr
          ? prepared.verify_with(env_->trusted_key, *env_->verify_cache)
          : prepared.verify_with(env_->trusted_key);
  if (!accepted) {
    ++stats_.signature_failures;
    if (env_->counters != nullptr) ++env_->counters->signature_failures;
    return;
  }
  dispatch_control(prepared.message);
}

void PnaXlet::dispatch_control(const ControlMessage& message) {
  control_ctx_ = trace_emit(obs::TraceEventKind::kControlReceived,
                            message.trace, message.instance);
  // The control message tells the agent where its Controller lives; start
  // heartbeating as soon as that is known (idle PNAs report too — this is
  // how the Controller sizes the idle pool).
  ensure_heartbeat(message);

  switch (message.type) {
    case ControlType::kWakeup:
      handle_wakeup(message);
      break;
    case ControlType::kReset:
      handle_reset(message);
      break;
  }
}

void PnaXlet::handle_wakeup(const ControlMessage& message) {
  // Busy PNAs simply drop wakeup messages.
  if (dve_ || pending_join_) {
    ++stats_.wakeups_dropped_busy;
    if (env_->counters != nullptr) ++env_->counters->wakeups_dropped_busy;
    trace_emit(obs::TraceEventKind::kWakeupDroppedBusy, control_ctx_,
               message.instance);
    return;
  }
  // Compliance with the requirements present in the message.
  const auto& profile = context_->receiver().profile();
  const Requirements& req = message.requirements;
  const bool compliant =
      (req.min_ram.count() == 0 || profile.ram >= req.min_ram) &&
      (req.min_flash.count() == 0 || profile.flash >= req.min_flash) &&
      (req.device_kind.empty() || req.device_kind == profile.name);
  if (!compliant) {
    ++stats_.wakeups_rejected_requirements;
    if (env_->counters != nullptr) {
      ++env_->counters->wakeups_rejected_requirements;
    }
    trace_emit(obs::TraceEventKind::kWakeupRejectedRequirements,
               control_ctx_, message.instance);
    return;
  }
  // The probability attribute throttles how many idle PNAs handle the
  // message (instance-size control).
  if (!rng_.bernoulli(message.probability)) {
    ++stats_.wakeups_dropped_probability;
    if (env_->counters != nullptr) {
      ++env_->counters->wakeups_dropped_probability;
    }
    trace_emit(obs::TraceEventKind::kWakeupDroppedProbability, control_ctx_,
               message.instance);
    return;
  }
  join_instance(message);
}

void PnaXlet::handle_reset(const ControlMessage& message) {
  // A reset targets exactly one instance (a reset for kNoInstance is the
  // Controller's deployment hello and matches nothing).
  const bool match =
      message.instance != kNoInstance &&
      ((dve_ && dve_->instance() == message.instance) ||
       (pending_join_ && *pending_join_ == message.instance));
  if (!match) return;
  ++stats_.resets;
  if (env_->counters != nullptr) ++env_->counters->resets;
  leave_instance();
}

void PnaXlet::join_instance(const ControlMessage& message) {
  pending_join_ = message.instance;
  backend_node_ = message.backend_node;
  join_started_at_ = context_->simulation().now();
  join_ctx_ = trace_emit(obs::TraceEventKind::kWakeupAccepted, control_ctx_,
                         message.instance);
  // Event-driven status change: tell the Controller immediately so its
  // idle-pool estimate does not lag a full heartbeat interval.
  send_heartbeat();

  // Load the user application image from the carousel — the dominant cost
  // of the wakeup process (W = 1.5 I / beta on average).
  std::weak_ptr<bool> alive = alive_;
  const InstanceId instance = message.instance;
  const ImageSpec image = message.image;
  context_->read_carousel_file(
      image.name,
      [this, alive, instance, image](bool ok,
                                     const broadcast::CarouselFile&) {
        auto guard = alive.lock();
        if (!guard || !*guard || !started_) return;
        if (!pending_join_ || *pending_join_ != instance) return;  // reset
        pending_join_.reset();
        if (!ok) {
          // The module went off air (instance destroyed mid-join) or was
          // superseded; report the state change so the Controller's
          // accounting stays fresh.
          trace_emit(obs::TraceEventKind::kJoinAborted, join_ctx_, instance);
          join_ctx_ = {};
          send_heartbeat();
          return;
        }
        ++stats_.joins;
        if (env_->counters != nullptr) ++env_->counters->joins;
        if (env_->acquire_latency != nullptr) {
          env_->acquire_latency->record(
              (context_->simulation().now() - join_started_at_).seconds());
        }
        join_ctx_ = trace_emit(obs::TraceEventKind::kImageAcquired, join_ctx_,
                               instance);
        dve_ = std::make_unique<Dve>(instance, image,
                                     context_->simulation().now());
        send_heartbeat();  // joining -> busy: membership is event-driven
        request_task();
      });
}

void PnaXlet::leave_instance() {
  if (running_exec_) {
    context_->receiver().cancel_execution(*running_exec_);
    running_exec_.reset();
  }
  // Hand the abandoned task back so the Backend can requeue it now rather
  // than after the re-dispatch timeout.
  if (running_task_ && dve_ && backend_node_ != net::kInvalidNode) {
    context_->receiver().send(
        backend_node_,
        std::make_shared<TaskAbortMessage>(dve_->instance(), *running_task_,
                                           pna_id(), running_task_ctx_,
                                           running_replica_));
  }
  if (dve_ || pending_join_) {
    trace_emit(obs::TraceEventKind::kResetApplied, join_ctx_, instance());
  }
  running_task_.reset();
  running_task_ctx_ = {};
  join_ctx_ = {};
  dve_.reset();
  pending_join_.reset();
  // Any recovery timers in flight are for an instance we just left.
  pending_result_.reset();
  ++result_gen_;
  ++request_gen_;
  send_heartbeat();
}

void PnaXlet::ensure_heartbeat(const ControlMessage& message) {
  if (message.controller_node == net::kInvalidNode) return;
  controller_node_ = message.controller_node;
  // With an aggregation tier, heartbeats go to this agent's shard
  // aggregator instead of straight to the Controller. A voided slot
  // (aggregator failed over) re-homes the shard to the Controller.
  net::NodeId target = message.controller_node;
  if (!message.aggregators.empty()) {
    target = message.aggregators[pna_id() % message.aggregators.size()];
    if (target == net::kInvalidNode) target = message.controller_node;
  }
  heartbeat_target_ = target;
  if (message.heartbeat_interval <= sim::SimTime::zero()) return;
  if (heartbeat_running_) {
    if (message.heartbeat_interval == heartbeat_interval_) return;
    // The Controller re-parameterized the reporting cadence: re-arm.
    heartbeat_.cancel();
    heartbeat_running_ = false;
  }
  heartbeat_interval_ = message.heartbeat_interval;

  auto& simulation = context_->simulation();
  // Desynchronize the population: first beat at a random phase.
  const double phase =
      rng_.uniform(0.0, message.heartbeat_interval.seconds());
  heartbeat_ = sim::PeriodicTask(
      simulation, simulation.now() + sim::SimTime::from_seconds(phase),
      message.heartbeat_interval, [this] { send_heartbeat(); });
  heartbeat_running_ = true;
}

void PnaXlet::send_heartbeat() {
  if (!started_ || heartbeat_target_ == net::kInvalidNode) return;
  const sim::SimTime window = env_->heartbeat_pace_window;
  if (window <= sim::SimTime::zero()) {
    send_heartbeat_now();
    return;
  }
  // Paced mode: a beat already queued for our next phase slot absorbs this
  // one (the slot transmits the state current at release time, so nothing
  // is lost — only the redundant intermediate report).
  if (pace_pending_) {
    if (env_->counters != nullptr) ++env_->counters->heartbeats_paced;
    return;
  }
  pace_pending_ = true;
  // Deterministic per-agent phase in [0, window): a pure hash of the
  // pacing stream seed and the agent id — no live generator draw, so
  // enabling pacing cannot perturb any other stream.
  const std::uint64_t mix =
      util::SplitMix64(env_->heartbeat_phase_seed ^
                       (pna_id() * 0x9E3779B97F4A7C15ull))
          .next();
  const double frac =
      static_cast<double>(mix >> 11) * (1.0 / 9007199254740992.0);
  auto& simulation = context_->simulation();
  const sim::SimTime now = simulation.now();
  const std::int64_t wus = window.micros();
  const std::int64_t phase_us =
      static_cast<std::int64_t>(frac * static_cast<double>(wus));
  sim::SimTime release =
      sim::SimTime::from_micros((now.micros() / wus) * wus + phase_us);
  if (release <= now) release += window;
  std::weak_ptr<bool> alive = alive_;
  simulation.schedule_timer_in(
      release - now,
      [this, alive] {
        auto guard = alive.lock();
        if (!guard || !*guard) return;
        pace_pending_ = false;
        if (!started_ || hung_) return;
        send_heartbeat_now();
      },
      sim::SimTime::zero(), sim::EventPriority::kDefault);
}

void PnaXlet::send_heartbeat_now() {
  if (!started_ || heartbeat_target_ == net::kInvalidNode) return;
  ++stats_.heartbeats_sent;
  if (env_->counters != nullptr) ++env_->counters->heartbeats_sent;
  // Heartbeats chain off the join in progress when there is one (they are
  // what confirms membership) and off the last control receipt otherwise.
  const obs::TraceContext parent =
      join_ctx_.valid() ? join_ctx_ : control_ctx_;
  const obs::TraceContext ctx =
      trace_emit(obs::TraceEventKind::kHeartbeatSent, parent,
                 static_cast<std::uint64_t>(state()));
  // Pooled path recycles an exclusively-held message (object + control
  // block) instead of allocating one per beat.
  net::MessagePtr hb =
      env_->heartbeat_pool != nullptr
          ? net::MessagePtr(env_->heartbeat_pool->acquire(pna_id(), state(),
                                                         instance(), ctx))
          : std::make_shared<HeartbeatMessage>(pna_id(), state(), instance(),
                                               ctx);
  context_->receiver().send(heartbeat_target_, std::move(hb));
}

void PnaXlet::request_task() {
  if (!dve_ || backend_node_ == net::kInvalidNode) return;
  context_->receiver().send(
      backend_node_,
      std::make_shared<TaskRequestMessage>(dve_->instance(), pna_id()));
  if (env_->recovery != nullptr &&
      env_->recovery->request_watchdog > sim::SimTime::zero()) {
    arm_request_watchdog();
  }
}

void PnaXlet::arm_request_watchdog() {
  const std::uint64_t gen = ++request_gen_;
  std::weak_ptr<bool> alive = alive_;
  context_->simulation().schedule_timer_in(
      env_->recovery->request_watchdog,
      [this, alive, gen] {
        auto guard = alive.lock();
        if (!guard || !*guard || !started_ || hung_) return;
        if (gen != request_gen_) return;  // a reply arrived in time
        if (!dve_ || running_exec_) return;
        ++env_->recovery->request_retries;
        trace_emit(obs::TraceEventKind::kRecoveryRequestRetry, control_ctx_,
                   0);
        request_task();  // re-arms the watchdog
      },
      sim::SimTime::zero(), sim::EventPriority::kDefault);
}

void PnaXlet::arm_result_retry() {
  const std::uint64_t gen = ++result_gen_;
  // Exponential backoff with deterministic jitter: delay_n in
  // [0.5, 1.0) * base * 2^attempts, so colliding retries from agents that
  // lost the same ack desynchronize.
  const double backoff =
      env_->recovery->result_retry_base.seconds() *
      static_cast<double>(1ull << std::min(pending_result_->attempts, 16));
  const double delay = backoff * (0.5 + rng_.uniform(0.0, 0.5));
  std::weak_ptr<bool> alive = alive_;
  context_->simulation().schedule_timer_in(
      sim::SimTime::from_seconds(delay),
      [this, alive, gen] {
        auto guard = alive.lock();
        if (!guard || !*guard || !started_ || hung_) return;
        if (gen != result_gen_ || !pending_result_) return;
        if (pending_result_->attempts >= env_->recovery->result_retry_limit) {
          // Give up: the Backend's timeout sweep re-dispatches the task.
          pending_result_.reset();
          ++result_gen_;
          return;
        }
        ++pending_result_->attempts;
        ++env_->recovery->result_retries;
        const obs::TraceContext ctx =
            trace_emit(obs::TraceEventKind::kRecoveryResultRetry,
                       pending_result_->trace, pending_result_->task_index);
        context_->receiver().send(
            backend_node_,
            std::make_shared<TaskResultMessage>(
                pending_result_->instance, pending_result_->task_index,
                pna_id(), pending_result_->result_size, ctx,
                pending_result_->digest, pending_result_->replica));
        arm_result_retry();
      },
      sim::SimTime::zero(), sim::EventPriority::kDefault);
}

void PnaXlet::schedule_task_poll() {
  std::weak_ptr<bool> alive = alive_;
  // One-shot wheel timer: poll re-arm is O(1) regardless of how many PNAs
  // are polling, instead of churning the main event heap.
  context_->simulation().schedule_timer_in(
      env_->task_poll_interval,
      [this, alive] {
        auto guard = alive.lock();
        if (!guard || !*guard || !started_) return;
        request_task();
      },
      sim::SimTime::zero(), sim::EventPriority::kDefault);
}

void PnaXlet::on_direct_message(net::NodeId /*from*/,
                                const net::MessagePtr& message) {
  if (hung_) return;
  switch (message->tag()) {
    case kTagHeartbeatReply: {
      const auto& reply =
          static_cast<const HeartbeatReplyMessage&>(*message);
      if (reply.command() == HeartbeatCommand::kReset) {
        const bool match = reply.instance() != kNoInstance &&
                           ((dve_ && dve_->instance() == reply.instance()) ||
                            (pending_join_ &&
                             *pending_join_ == reply.instance()));
        if (match) {
          ++stats_.resets;
          if (env_->counters != nullptr) ++env_->counters->resets;
          leave_instance();
        }
      }
      break;
    }
    case kTagTaskAssign: {
      ++request_gen_;  // the request was answered; stop the watchdog
      if (!dve_) break;  // reset raced with an in-flight assignment
      const auto& assign = static_cast<const TaskAssignMessage&>(*message);
      if (assign.instance() != dve_->instance()) break;
      // Duplicate delivery of an assignment we are already executing (or a
      // second assignment racing a watchdog re-request): keep the first.
      if (running_exec_) break;
      const std::uint64_t task_index = assign.task_index();
      const util::Bits result_size = assign.result_size();
      const InstanceId instance = dve_->instance();
      const std::uint32_t replica = assign.replica();

      // Byzantine gate: with a profile block attached, this agent stamps a
      // result digest — the canonical one when honest, a forged one when
      // adversarial. Without a block, digest 0 keeps the pre-verification
      // wire bytes bit for bit.
      auto profile = fault::ByzantineProfile::kHonest;
      std::uint64_t digest = 0;
      if (env_->byzantine != nullptr) {
        const auto* table = env_->byzantine->table;
        const auto index =
            static_cast<std::size_t>(pna_id() - env_->byzantine->base);
        if (table != nullptr) profile = table->profile(index);
        digest = profile == fault::ByzantineProfile::kHonest
                     ? fault::honest_result_digest(instance, task_index)
                     : fault::forged_result_digest(table->forge_seed(index),
                                                   instance, task_index);
      }

      if (profile == fault::ByzantineProfile::kFreeRider) {
        // Free-rider: accept the task, skip the compute entirely, return
        // garbage immediately — to the Backend it looks like an absurdly
        // fast completion; only the digest (and the spot-check record)
        // gives it away.
        ++stats_.tasks_completed;
        if (env_->counters != nullptr) {
          ++env_->counters->tasks_completed;
          ++env_->counters->results_freeridden;
        }
        dve_->record_task_completed();
        const obs::TraceContext done = trace_emit(
            obs::TraceEventKind::kTaskExecuted, assign.trace(), task_index);
        context_->receiver().send(
            backend_node_,
            std::make_shared<TaskResultMessage>(instance, task_index,
                                                pna_id(), result_size, done,
                                                digest, replica));
        if (env_->recovery != nullptr) {
          pending_result_ = PendingResult{instance,    task_index,
                                          result_size, done,
                                          0,           digest,
                                          replica};
          arm_result_retry();
        }
        request_task();
        break;
      }

      running_task_ = task_index;
      running_replica_ = replica;
      running_task_ctx_ = assign.trace();
      const bool forged = profile != fault::ByzantineProfile::kHonest;
      running_exec_ = context_->receiver().execute(
          assign.reference_seconds(),
          [this, task_index, result_size, instance, digest, replica,
           forged] {
            running_exec_.reset();
            running_task_.reset();
            if (!dve_ || dve_->instance() != instance) return;
            ++stats_.tasks_completed;
            if (env_->counters != nullptr) {
              ++env_->counters->tasks_completed;
              if (forged) ++env_->counters->results_forged;
            }
            dve_->record_task_completed();
            const obs::TraceContext done =
                trace_emit(obs::TraceEventKind::kTaskExecuted,
                           running_task_ctx_, task_index);
            running_task_ctx_ = {};
            context_->receiver().send(
                backend_node_, std::make_shared<TaskResultMessage>(
                                   instance, task_index, pna_id(),
                                   result_size, done, digest, replica));
            if (env_->recovery != nullptr) {
              // Hold the result for bounded retry until the Backend acks.
              pending_result_ = PendingResult{instance,    task_index,
                                              result_size, done,
                                              0,           digest,
                                              replica};
              arm_result_retry();
            }
            request_task();
          });
      break;
    }
    case kTagTaskResultAck: {
      const auto& ack = static_cast<const TaskResultAckMessage&>(*message);
      if (pending_result_ && pending_result_->instance == ack.instance() &&
          pending_result_->task_index == ack.task_index()) {
        pending_result_.reset();
        ++result_gen_;  // invalidate the in-flight retry timer
      }
      break;
    }
    case kTagNoTask: {
      ++request_gen_;  // the request was answered; stop the watchdog
      if (!dve_) break;
      // Queue exhausted: the PNA remains a member of the instance until a
      // reset, polling lazily in case tasks are re-queued (churn recovery).
      schedule_task_poll();
      break;
    }
    default:
      break;
  }
}

bool PnaXlet::fault_crash() {
  if (!started_ || context_ == nullptr) return false;
  // The process dies: every outstanding callback, read, and timer holds a
  // weak_ptr to the old liveness token and becomes inert; the relaunched
  // Xlet gets a fresh one.
  *alive_ = false;
  alive_ = std::make_shared<bool>(true);
  hung_ = false;
  pace_pending_ = false;  // the pending release timer died with the token
  if (heartbeat_running_) {
    heartbeat_.cancel();
    heartbeat_running_ = false;
  }
  if (running_exec_) {
    context_->receiver().cancel_execution(*running_exec_);
    running_exec_.reset();
  }
  // No abort goes out — a crashed process cannot say goodbye. The
  // Backend's timeout sweep recovers any task that was in flight.
  running_task_.reset();
  running_task_ctx_ = {};
  pending_result_.reset();
  ++result_gen_;
  ++request_gen_;
  dve_.reset();
  pending_join_.reset();
  join_ctx_ = {};
  control_ctx_ = {};
  controller_node_ = net::kInvalidNode;
  heartbeat_target_ = net::kInvalidNode;
  backend_node_ = net::kInvalidNode;
  heartbeat_interval_ = {};
  last_handled_content_ = 0;
  pending_read_content_ = 0;
  // Middleware watchdog relaunch: the trigger application starts over and
  // re-reads the on-air configuration, which re-homes it (heartbeats,
  // possibly a fresh join if a wakeup is on air).
  acquire_config();
  return true;
}

bool PnaXlet::fault_hang(sim::SimTime duration) {
  if (!started_ || hung_ || context_ == nullptr) return false;
  hung_ = true;
  // A frozen process fires no timers and services no I/O: invalidate all
  // outstanding callbacks like a crash does, but keep the state so the
  // agent *looks* alive (stale membership) until the watchdog acts.
  *alive_ = false;
  alive_ = std::make_shared<bool>(true);
  pace_pending_ = false;
  if (heartbeat_running_) {
    heartbeat_.cancel();
    heartbeat_running_ = false;
  }
  if (running_exec_) {
    context_->receiver().cancel_execution(*running_exec_);
    running_exec_.reset();
  }
  std::weak_ptr<bool> alive = alive_;
  context_->simulation().schedule_timer_in(
      duration,
      [this, alive] {
        auto guard = alive.lock();
        if (!guard || !*guard || !started_ || !hung_) return;
        // Watchdog: kill the frozen process and relaunch it.
        hung_ = false;
        fault_crash();
      },
      sim::SimTime::zero(), sim::EventPriority::kDefault);
  return true;
}

}  // namespace oddci::core

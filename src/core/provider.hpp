#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

#include "core/controller.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

/// The OddCI Provider: the user-facing component that creates, manages and
/// destroys OddCI instances according to user requests, instructing the
/// Controller to provision or release them.
///
/// Besides immediate instantiation, the Provider offers *admission
/// control*: requests larger than the currently idle pool are queued and
/// admitted FIFO as capacity frees up (instances released, receivers
/// switched on) — so a burst of user requests does not thrash the
/// broadcast channel with unsatisfiable wakeups.
namespace oddci::core {

struct AdmissionOptions {
  /// A request is admitted when idle_pool_estimate >= target * margin.
  double capacity_margin = 1.0;
  /// Cadence of queue re-evaluation (on top of event-driven checks).
  sim::SimTime review_interval = sim::SimTime::from_seconds(30);
};

class Provider {
 public:
  /// The Provider installs itself as the Controller's size observer; only
  /// one Provider per Controller.
  explicit Provider(Controller& controller);

  /// With a simulation handle the Provider also runs the admission queue
  /// (enqueue_request / queued_requests).
  Provider(Controller& controller, sim::Simulation& simulation,
           AdmissionOptions admission = {});
  ~Provider();

  Provider(const Provider&) = delete;
  Provider& operator=(const Provider&) = delete;

  using ReadyCallback =
      std::function<void(InstanceId, sim::SimTime ready_at)>;

  /// Request a new instance. `on_ready` fires the first time the instance
  /// reaches its target size (the end of the wakeup process).
  InstanceId request_instance(const InstanceSpec& spec,
                              net::NodeId backend_node,
                              ReadyCallback on_ready = nullptr);

  /// Dismantle an instance (broadcast reset; resources return to the pool).
  void release_instance(InstanceId id);

  /// Grow or shrink an active instance.
  void resize_instance(InstanceId id, std::size_t new_target);

  // --- admission queue ------------------------------------------------------

  using Ticket = std::uint64_t;
  /// Called when a queued request is admitted (instance created).
  using AdmittedCallback = std::function<void(Ticket, InstanceId)>;

  /// Queue a request; it is admitted (create_instance) once the idle pool
  /// can cover it. Requires the simulation-aware constructor.
  /// Requests are admitted strictly FIFO — a small head-of-line request
  /// does not jump a large one (no starvation).
  Ticket enqueue_request(const InstanceSpec& spec, net::NodeId backend_node,
                         AdmittedCallback on_admitted = nullptr,
                         ReadyCallback on_ready = nullptr);

  /// Remove a still-queued request. False if already admitted/unknown.
  bool cancel_request(Ticket ticket);

  [[nodiscard]] std::size_t queued_requests() const { return queue_.size(); }

  [[nodiscard]] const InstanceStatus* status(InstanceId id) const {
    return controller_->status(id);
  }

  struct Stats {
    std::uint64_t instances_requested = 0;
    std::uint64_t instances_released = 0;
    std::uint64_t resizes = 0;
    std::uint64_t requests_queued = 0;
    std::uint64_t requests_admitted = 0;
    std::uint64_t requests_cancelled = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Expose the provisioning counters and queue depth under "provider.*"
  /// in `registry` (snapshot-time probes; the provider must outlive them).
  void link_metrics(obs::MetricsRegistry& registry) const;

  /// Attach a flight recorder: every request_instance starts a new root
  /// trace (the user-facing origin of the causal chain) and releases are
  /// linked back to it. nullptr detaches.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

 private:
  void on_size_change(InstanceId id, std::size_t current, std::size_t target);
  void review_queue();

  struct Queued {
    Ticket ticket;
    InstanceSpec spec;
    net::NodeId backend;
    AdmittedCallback on_admitted;
    ReadyCallback on_ready;
  };

  Controller* controller_;
  sim::Simulation* simulation_ = nullptr;
  AdmissionOptions admission_;
  std::unordered_map<InstanceId, ReadyCallback> waiting_ready_;
  std::deque<Queued> queue_;
  Ticket next_ticket_ = 1;
  sim::PeriodicTask reviewer_;
  bool reviewer_running_ = false;
  Stats stats_;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace oddci::core

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/messages.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

/// Heartbeat aggregation tier.
///
/// The paper notes that millions of PNAs heartbeating a single Controller
/// would "consume too much of the Controller's processing and networking
/// resources" and defers the mechanism to future research (Section 3.2,
/// footnote 3). This is that mechanism: regional aggregators receive raw
/// heartbeats from a shard of the PNA population (each agent picks
/// aggregators[pna_id % k] from the control message) and forward one
/// consolidated report per window, covering every PNA heard from in that
/// window — so the Controller's liveness view stays fresh while its message
/// rate drops from N/interval to k/window and its byte rate loses the
/// per-message header overhead.
namespace oddci::core {

struct AggregatorOptions {
  /// How often the consolidated report is sent upstream.
  sim::SimTime report_interval = sim::SimTime::from_seconds(10);
};

class HeartbeatAggregator final : public net::Endpoint {
 public:
  HeartbeatAggregator(sim::Simulation& simulation, net::Network& network,
                      net::NodeId controller, const net::LinkSpec& link,
                      AggregatorOptions options = {});
  ~HeartbeatAggregator() override;

  HeartbeatAggregator(const HeartbeatAggregator&) = delete;
  HeartbeatAggregator& operator=(const HeartbeatAggregator&) = delete;

  [[nodiscard]] net::NodeId node_id() const { return node_id_; }

  struct Stats {
    std::uint64_t heartbeats_received = 0;
    std::uint64_t reports_sent = 0;
    std::uint64_t entries_forwarded = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Expose this aggregator's counters and window size under
  /// "<prefix>.*" in `registry` (use a distinct prefix per aggregator,
  /// e.g. "aggregator.0"). Snapshot-time probes.
  void link_metrics(obs::MetricsRegistry& registry,
                    const std::string& prefix) const;

  /// Attach a flight recorder: each consolidated report is emitted as an
  /// aggregate.flush event, and entries keep the trace context of the
  /// heartbeat they consolidate. nullptr detaches.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

  /// Downstream messages (heartbeat replies from the Controller addressed
  /// to the aggregator) are not expected: the Controller replies directly
  /// to PNAs. Heartbeats are absorbed; everything else is ignored.
  void on_message(net::NodeId from, const net::MessagePtr& message) override;

 private:
  void flush();

  sim::Simulation& simulation_;
  net::Network& network_;
  net::NodeId controller_;
  AggregatorOptions options_;
  net::NodeId node_id_ = net::kInvalidNode;

  struct Record {
    PnaState state = PnaState::kIdle;
    InstanceId instance = kNoInstance;
    obs::TraceContext trace;  ///< context of the consolidated heartbeat
  };
  /// Latest state per PNA heard from since the last flush.
  std::unordered_map<std::uint64_t, Record> window_;
  sim::PeriodicTask reporter_;
  Stats stats_;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace oddci::core

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/messages.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

/// Heartbeat aggregation tier.
///
/// The paper notes that millions of PNAs heartbeating a single Controller
/// would "consume too much of the Controller's processing and networking
/// resources" and defers the mechanism to future research (Section 3.2,
/// footnote 3). This is that mechanism: regional aggregators receive raw
/// heartbeats from a shard of the PNA population (each agent picks
/// aggregators[pna_id % k] from the control message) and forward one
/// consolidated report per window, covering every PNA heard from in that
/// window — so the Controller's liveness view stays fresh while its message
/// rate drops from N/interval to k/window and its byte rate loses the
/// per-message header overhead.
namespace oddci::core {

struct AggregatorOptions {
  /// How often the consolidated report is sent upstream.
  sim::SimTime report_interval = sim::SimTime::from_seconds(10);
  /// Report encoding. kDelta keeps a persistent membership ledger and
  /// ships only changes (plus periodic resyncs) instead of every member
  /// heard in the window.
  HeartbeatMode mode = HeartbeatMode::kNaive;
  /// Delta mode: every Nth frame is a full checksummed resync, bounding
  /// how long a lost delta can leave the Controller's view stale.
  std::uint32_t resync_every = 30;
  /// Delta mode: a ledger member silent past this horizon is expired with
  /// an explicit kExpire delta (the aggregator takes over the staleness
  /// pruning the Controller did in naive mode). Zero disables expiry.
  sim::SimTime expiry = sim::SimTime::zero();
  /// Delta mode: stable identity carried in every frame's origin field, so
  /// the Controller can attribute deltas even when they arrive batched
  /// through a relay tier.
  std::uint32_t origin = 0;
  /// Deterministic offset of this aggregator's flush boundary within the
  /// report interval (paced mode de-synchronizes the tier's upstream
  /// bursts). Zero = legacy aligned windows.
  sim::SimTime flush_phase = sim::SimTime::zero();
};

class HeartbeatAggregator final : public net::Endpoint {
 public:
  HeartbeatAggregator(sim::Simulation& simulation, net::Network& network,
                      net::NodeId controller, const net::LinkSpec& link,
                      AggregatorOptions options = {});
  ~HeartbeatAggregator() override;

  HeartbeatAggregator(const HeartbeatAggregator&) = delete;
  HeartbeatAggregator& operator=(const HeartbeatAggregator&) = delete;

  [[nodiscard]] net::NodeId node_id() const { return node_id_; }

  /// Declare the shard this aggregator serves: PNAs whose
  /// `pna_id % stride == phase` (the selection rule agents apply to the
  /// control message's aggregator list). Sharded ids collapse to the dense
  /// slot `pna_id / stride`, turning the per-heartbeat window write into a
  /// vector store instead of a hash-map node allocation. Ids outside the
  /// shard (or beyond the dense cap) still work via an overflow map, so
  /// standalone/unsharded use keeps its old semantics.
  void set_shard(std::uint64_t stride, std::uint64_t phase);

  /// Re-point the upstream hop (defaults to the Controller passed at
  /// construction); the relay tier points leaf aggregators at their relay.
  void set_upstream(net::NodeId upstream) { controller_ = upstream; }

  struct Stats {
    std::uint64_t heartbeats_received = 0;
    std::uint64_t reports_sent = 0;
    std::uint64_t entries_forwarded = 0;
    std::uint64_t resyncs_sent = 0;    ///< delta mode: full-state frames
    std::uint64_t expiries_sent = 0;   ///< delta mode: kExpire entries
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Delta mode: current ledger membership (known, unexpired reporters).
  [[nodiscard]] std::uint64_t ledger_members() const {
    return ledger_members_;
  }

  /// Expose this aggregator's counters and window size under
  /// "<prefix>.*" in `registry` (use a distinct prefix per aggregator,
  /// e.g. "aggregator.0"). Snapshot-time probes.
  void link_metrics(obs::MetricsRegistry& registry,
                    const std::string& prefix) const;

  /// Attach a flight recorder: each consolidated report is emitted as an
  /// aggregate.flush event, and entries keep the trace context of the
  /// heartbeat they consolidate. nullptr detaches.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

  /// Fault injection: drop off the network and lose the in-flight
  /// consolidation window (heartbeats absorbed but not yet reported).
  void crash();
  /// Fault injection: come back up with an empty window; the next report
  /// goes out a full interval from now.
  void restart();

  /// Downstream messages (heartbeat replies from the Controller addressed
  /// to the aggregator) are not expected: the Controller replies directly
  /// to PNAs. Heartbeats are absorbed; everything else is ignored.
  void on_message(net::NodeId from, const net::MessagePtr& message) override;

 private:
  void flush();
  void flush_delta();
  void ledger_note(std::uint64_t id, const HeartbeatMessage& hb);
  void clear_ledger();

  sim::Simulation& simulation_;
  net::Network& network_;
  net::NodeId controller_;
  AggregatorOptions options_;
  net::NodeId node_id_ = net::kInvalidNode;

  struct Record {
    PnaState state = PnaState::kIdle;
    InstanceId instance = kNoInstance;
    obs::TraceContext trace;  ///< context of the consolidated heartbeat
  };

  /// Hard cap on the dense window so a rogue huge id cannot balloon the
  /// vector; slots past it spill to the overflow map.
  static constexpr std::uint64_t kMaxDenseSlots = 1ull << 21;

  /// Dense-window cell. Membership in the *current* window is an epoch
  /// stamp, so flush never clears the vector — it bumps `epoch_` and the
  /// whole window is logically empty again.
  struct DenseRecord {
    Record rec;
    std::uint64_t epoch = 0;
  };

  [[nodiscard]] std::size_t window_size() const {
    return touched_.size() + overflow_.size();
  }

  std::uint64_t shard_stride_ = 1;
  std::uint64_t shard_phase_ = 0;
  std::uint64_t epoch_ = 1;
  /// Latest state per dense slot; `touched_` lists this window's live
  /// slots in arrival order (deterministic flush order without a scan).
  std::vector<DenseRecord> dense_;
  std::vector<std::uint32_t> touched_;
  /// Ids outside the shard pattern or past the dense cap; cleared per
  /// flush like the old hash window.
  std::unordered_map<std::uint64_t, Record> overflow_;

  /// Delta-mode ledger: persistent latest-known state per reporter (the
  /// naive window structures above stay untouched in delta mode).
  struct LedgerRecord {
    PnaState state = PnaState::kIdle;
    InstanceId instance = kNoInstance;
    obs::TraceContext trace;
    sim::SimTime last_seen;
    bool known = false;
    bool dirty = false;  ///< has an unreported change this window
  };
  std::vector<LedgerRecord> ledger_;           ///< dense slot -> record
  std::vector<std::uint32_t> ledger_order_;    ///< known slots, first-seen order
  std::vector<std::uint32_t> ledger_dirty_;    ///< dirty slots, arrival order
  std::unordered_map<std::uint64_t, LedgerRecord> ledger_overflow_;
  std::vector<std::uint64_t> overflow_dirty_;
  std::uint32_t delta_epoch_ = 0;   ///< wrapping serial of the last frame
  std::uint32_t next_resync_ = 0;   ///< frames until resync; 0 = next is one
  std::uint64_t ledger_members_ = 0;

  sim::PeriodicTask reporter_;
  bool crashed_ = false;
  /// Restarted but no heartbeat heard yet: keep sending empty
  /// announcement reports (any one of them un-fails us at the Controller;
  /// individual reports may be lost on a faulty wire).
  bool announcing_ = false;
  Stats stats_;
  obs::FlightRecorder* recorder_ = nullptr;
};

/// Optional intermediate aggregation tier (delta mode): a relay collects
/// the delta frames of `tree_fanin` leaf aggregators and forwards them to
/// the Controller as one batch per window, so Controller ingress message
/// rate scales with relays, not leaves, and per-frame transport headers
/// are amortized away. Frames are forwarded verbatim in arrival order, so
/// per-origin epoch ordering is preserved end to end.
class AggregatorRelay final : public net::Endpoint {
 public:
  AggregatorRelay(sim::Simulation& simulation, net::Network& network,
                  net::NodeId controller, const net::LinkSpec& link,
                  sim::SimTime report_interval,
                  sim::SimTime flush_phase = sim::SimTime::zero());
  ~AggregatorRelay() override;

  AggregatorRelay(const AggregatorRelay&) = delete;
  AggregatorRelay& operator=(const AggregatorRelay&) = delete;

  [[nodiscard]] net::NodeId node_id() const { return node_id_; }

  struct Stats {
    std::uint64_t frames_received = 0;
    std::uint64_t batches_sent = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  void link_metrics(obs::MetricsRegistry& registry,
                    const std::string& prefix) const;

  void on_message(net::NodeId from, const net::MessagePtr& message) override;

 private:
  void flush();

  sim::Simulation& simulation_;
  net::Network& network_;
  net::NodeId controller_;
  net::NodeId node_id_ = net::kInvalidNode;
  std::vector<std::shared_ptr<const DeltaReportMessage>> pending_;
  sim::PeriodicTask reporter_;
  Stats stats_;
};

}  // namespace oddci::core

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "broadcast/signature.hpp"
#include "broadcast/verify_cache.hpp"
#include "net/message.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/time.hpp"
#include "util/quantity.hpp"

/// OddCI protocol messages.
///
/// Two planes:
///  * the *broadcast plane* carries `ControlMessage`s (wakeup / reset)
///    inside the carousel's configuration file, signed by the Controller;
///  * the *direct channels* carry heartbeats, Controller replies, and the
///    Backend task-distribution protocol as `net::Message`s whose wire
///    sizes model the paper's s and r payloads.
namespace oddci::core {

using InstanceId = std::uint64_t;
inline constexpr InstanceId kNoInstance = 0;

/// The application image that a wakeup stages on the carousel.
struct ImageSpec {
  std::uint64_t image_id = 0;
  std::string name;
  util::Bits size;
};

/// Node requirements carried in a wakeup; a PNA joins only if compliant.
struct Requirements {
  util::Bits min_ram;                 ///< 0 = no constraint
  util::Bits min_flash;               ///< 0 = no constraint
  std::string device_kind;            ///< empty = any
};

enum class ControlType : std::uint8_t { kWakeup = 1, kReset = 2 };

/// Contents of the carousel "configuration file" (plus the image file it
/// references). Broadcast to all tuned PNAs; idle PNAs handle a wakeup with
/// the given probability, busy PNAs drop it; a reset destroys the DVE of
/// PNAs belonging to `instance`.
struct ControlMessage {
  ControlType type = ControlType::kWakeup;
  InstanceId instance = kNoInstance;
  double probability = 1.0;  ///< handling probability for idle PNAs
  Requirements requirements;
  sim::SimTime heartbeat_interval = sim::SimTime::from_seconds(30);
  ImageSpec image;            ///< wakeup only
  net::NodeId controller_node = net::kInvalidNode;
  net::NodeId backend_node = net::kInvalidNode;
  /// Optional heartbeat-aggregation tier (the paper defers the Controller
  /// bottleneck to future work; this is that mechanism). When non-empty,
  /// each PNA reports to aggregators[pna_id % size()] instead of to the
  /// Controller directly; aggregators forward consolidated reports.
  std::vector<net::NodeId> aggregators;
  /// Causal trace context (transport-header metadata). Carried on the
  /// wire but *not* covered by the signature: tracing must be attachable
  /// without changing what the Controller signs, and the modelled
  /// wire_size already budgets a transport header for it.
  obs::TraceContext trace;
  broadcast::Signature signature = 0;

  /// Canonical bytes covered by the signature.
  [[nodiscard]] std::string canonical_bytes() const;
  void sign_with(broadcast::SigningKey key);
  [[nodiscard]] bool verify_with(broadcast::SigningKey key) const;
};

/// A control message *prepared once per broadcast* instead of once per
/// receiver: the decoded message plus its canonical signing bytes and
/// their content digest, computed a single time when the configuration
/// file is decoded. The carousel hands every tuned PNA the same immutable
/// `shared_ptr<const PreparedControl>`, so a wakeup reaching 1M receivers
/// costs one decode, one canonicalization, and (through `VerifyCache`)
/// one signature hash — not 1M of each.
struct PreparedControl {
  ControlMessage message;
  std::string canonical;      ///< message.canonical_bytes(), cached
  std::uint64_t digest = 0;   ///< broadcast::content_digest(canonical)

  /// Canonicalize + digest `msg` once.
  [[nodiscard]] static std::shared_ptr<const PreparedControl> make(
      ControlMessage msg);

  /// Full verification (no memoization) against the cached canonical bytes.
  [[nodiscard]] bool verify_with(broadcast::SigningKey key) const {
    return broadcast::verify(key, canonical, message.signature);
  }
  /// Memoized verification: one keyed hash per distinct (message, key)
  /// across all receivers sharing `cache`.
  [[nodiscard]] bool verify_with(broadcast::SigningKey key,
                                 broadcast::VerifyCache& cache) const {
    return cache.verify(canonical, digest, key, message.signature);
  }
};

using PreparedControlPtr = std::shared_ptr<const PreparedControl>;

// ---------------------------------------------------------------------------
// Direct-channel messages.
// ---------------------------------------------------------------------------

enum MessageTag : int {
  kTagHeartbeat = 1,
  kTagHeartbeatReply = 2,
  kTagTaskRequest = 3,
  kTagTaskAssign = 4,
  kTagTaskResult = 5,
  kTagNoTask = 6,
  kTagRemoteQuery = 7,
  kTagRemoteAnswer = 8,
  kTagTaskAbort = 9,
  kTagAggregateReport = 10,
  kTagTaskResultAck = 11,
  kTagDeltaReport = 12,
  kTagDeltaBatch = 13,
};

/// Aggregate-report encoding selected by `SystemConfig::heartbeat.mode`.
/// kNaive ships every member heard in the window (the original tree);
/// kDelta ships only membership changes plus periodic checksummed resyncs,
/// making the upstream path O(changes) instead of O(members).
enum class HeartbeatMode : std::uint8_t { kNaive = 0, kDelta = 1 };

/// Fixed protocol header modelled on a compact binary encoding.
inline constexpr util::Bits kHeaderBits = util::Bits(64 * 8);

/// Agent status reported in heartbeats. kJoining (accepted a wakeup, image
/// still being acquired from the carousel) refines the paper's idle/busy
/// dichotomy so the Controller can count committed-but-not-ready nodes
/// without treating them as instance members.
enum class PnaState : std::uint8_t { kIdle = 0, kJoining = 1, kBusy = 2 };

/// Periodic PNA -> Controller status report.
class HeartbeatMessage final : public net::Message {
 public:
  HeartbeatMessage(std::uint64_t pna_id, PnaState state, InstanceId instance,
                   obs::TraceContext trace = {})
      : pna_id_(pna_id), state_(state), instance_(instance), trace_(trace) {}

  [[nodiscard]] util::Bits wire_size() const override { return kHeaderBits; }
  [[nodiscard]] int tag() const override { return kTagHeartbeat; }

  [[nodiscard]] std::uint64_t pna_id() const { return pna_id_; }
  [[nodiscard]] PnaState state() const { return state_; }
  [[nodiscard]] InstanceId instance() const { return instance_; }
  [[nodiscard]] obs::TraceContext trace() const { return trace_; }

  /// Re-point an exclusively-owned message at a new report —
  /// `net::MessagePool` recycling hook (called only when the pool holds
  /// the sole reference).
  void reset(std::uint64_t pna_id, PnaState state, InstanceId instance,
             obs::TraceContext trace = {}) {
    pna_id_ = pna_id;
    state_ = state;
    instance_ = instance;
    trace_ = trace;
  }

 private:
  std::uint64_t pna_id_;
  PnaState state_;
  InstanceId instance_;
  obs::TraceContext trace_;
};

enum class HeartbeatCommand : std::uint8_t { kNone = 0, kReset = 1 };

/// Controller -> PNA heartbeat reply. Only sent when carrying a command
/// (e.g. trimming an oversized instance with a unicast reset).
class HeartbeatReplyMessage final : public net::Message {
 public:
  HeartbeatReplyMessage(InstanceId instance, HeartbeatCommand command)
      : instance_(instance), command_(command) {}

  [[nodiscard]] util::Bits wire_size() const override { return kHeaderBits; }
  [[nodiscard]] int tag() const override { return kTagHeartbeatReply; }

  [[nodiscard]] InstanceId instance() const { return instance_; }
  [[nodiscard]] HeartbeatCommand command() const { return command_; }

 private:
  InstanceId instance_;
  HeartbeatCommand command_;
};

/// PNA -> Backend: ask for work.
class TaskRequestMessage final : public net::Message {
 public:
  TaskRequestMessage(InstanceId instance, std::uint64_t pna_id)
      : instance_(instance), pna_id_(pna_id) {}

  [[nodiscard]] util::Bits wire_size() const override { return kHeaderBits; }
  [[nodiscard]] int tag() const override { return kTagTaskRequest; }

  [[nodiscard]] InstanceId instance() const { return instance_; }
  [[nodiscard]] std::uint64_t pna_id() const { return pna_id_; }

 private:
  InstanceId instance_;
  std::uint64_t pna_id_;
};

/// Backend -> PNA: a task assignment; the wire size includes the task's
/// input payload (the paper's s term). `replica` distinguishes the k
/// redundant dispatches of one task under verified execution (0 for the
/// first/only copy); it rides the modelled transport-header budget, so
/// wire_size is unchanged whether or not verification is on.
class TaskAssignMessage final : public net::Message {
 public:
  TaskAssignMessage(InstanceId instance, std::uint64_t task_index,
                    util::Bits input_size, util::Bits result_size,
                    double reference_seconds, obs::TraceContext trace = {},
                    std::uint32_t replica = 0)
      : instance_(instance),
        task_index_(task_index),
        input_size_(input_size),
        result_size_(result_size),
        reference_seconds_(reference_seconds),
        trace_(trace),
        replica_(replica) {}

  [[nodiscard]] util::Bits wire_size() const override {
    return kHeaderBits + input_size_;
  }
  [[nodiscard]] int tag() const override { return kTagTaskAssign; }

  [[nodiscard]] InstanceId instance() const { return instance_; }
  [[nodiscard]] std::uint64_t task_index() const { return task_index_; }
  [[nodiscard]] util::Bits input_size() const { return input_size_; }
  [[nodiscard]] util::Bits result_size() const { return result_size_; }
  [[nodiscard]] double reference_seconds() const { return reference_seconds_; }
  [[nodiscard]] obs::TraceContext trace() const { return trace_; }
  [[nodiscard]] std::uint32_t replica() const { return replica_; }

 private:
  InstanceId instance_;
  std::uint64_t task_index_;
  util::Bits input_size_;
  util::Bits result_size_;
  double reference_seconds_;
  obs::TraceContext trace_;
  std::uint32_t replica_;
};

/// PNA -> Backend: a task's result; wire size includes the r payload.
/// `digest` is the canonical result digest (fault::honest_result_digest
/// for an honest computation; 0 when verification is off — the pre-verify
/// protocol) and `replica` echoes the TaskAssign replica id. Both ride the
/// modelled transport-header budget: wire_size is unchanged.
class TaskResultMessage final : public net::Message {
 public:
  TaskResultMessage(InstanceId instance, std::uint64_t task_index,
                    std::uint64_t pna_id, util::Bits result_size,
                    obs::TraceContext trace = {}, std::uint64_t digest = 0,
                    std::uint32_t replica = 0)
      : instance_(instance),
        task_index_(task_index),
        pna_id_(pna_id),
        result_size_(result_size),
        trace_(trace),
        digest_(digest),
        replica_(replica) {}

  [[nodiscard]] util::Bits wire_size() const override {
    return kHeaderBits + result_size_;
  }
  [[nodiscard]] int tag() const override { return kTagTaskResult; }

  [[nodiscard]] InstanceId instance() const { return instance_; }
  [[nodiscard]] std::uint64_t task_index() const { return task_index_; }
  [[nodiscard]] std::uint64_t pna_id() const { return pna_id_; }
  [[nodiscard]] obs::TraceContext trace() const { return trace_; }
  [[nodiscard]] std::uint64_t digest() const { return digest_; }
  [[nodiscard]] std::uint32_t replica() const { return replica_; }

 private:
  InstanceId instance_;
  std::uint64_t task_index_;
  std::uint64_t pna_id_;
  util::Bits result_size_;
  obs::TraceContext trace_;
  std::uint64_t digest_;
  std::uint32_t replica_;
};

/// Backend -> PNA: idempotent acknowledgement of a received result. Only
/// sent when `BackendOptions::ack_results` is on (the fault-injection
/// recovery protocol); it stops the PNA's bounded result-upload retry, and
/// re-acking a duplicate delivery is harmless.
class TaskResultAckMessage final : public net::Message {
 public:
  TaskResultAckMessage(InstanceId instance, std::uint64_t task_index)
      : instance_(instance), task_index_(task_index) {}

  [[nodiscard]] util::Bits wire_size() const override { return kHeaderBits; }
  [[nodiscard]] int tag() const override { return kTagTaskResultAck; }

  [[nodiscard]] InstanceId instance() const { return instance_; }
  [[nodiscard]] std::uint64_t task_index() const { return task_index_; }

 private:
  InstanceId instance_;
  std::uint64_t task_index_;
};

/// PNA -> Backend: the agent is abandoning an assigned task without a
/// result (it was reset while executing — trimming or instance teardown).
/// Lets the Backend requeue immediately instead of waiting for the
/// re-dispatch timeout. A power-off cannot send this; those losses are
/// still covered by the timeout sweep. `replica` echoes the TaskAssign
/// replica id so the abort addresses exactly the dispatched copy; like the
/// other verification fields it rides the transport-header budget.
class TaskAbortMessage final : public net::Message {
 public:
  TaskAbortMessage(InstanceId instance, std::uint64_t task_index,
                   std::uint64_t pna_id, obs::TraceContext trace = {},
                   std::uint32_t replica = 0)
      : instance_(instance),
        task_index_(task_index),
        pna_id_(pna_id),
        trace_(trace),
        replica_(replica) {}

  [[nodiscard]] util::Bits wire_size() const override { return kHeaderBits; }
  [[nodiscard]] int tag() const override { return kTagTaskAbort; }

  [[nodiscard]] InstanceId instance() const { return instance_; }
  [[nodiscard]] std::uint64_t task_index() const { return task_index_; }
  [[nodiscard]] std::uint64_t pna_id() const { return pna_id_; }
  [[nodiscard]] obs::TraceContext trace() const { return trace_; }
  [[nodiscard]] std::uint32_t replica() const { return replica_; }

 private:
  InstanceId instance_;
  std::uint64_t task_index_;
  std::uint64_t pna_id_;
  obs::TraceContext trace_;
  std::uint32_t replica_;
};

/// Backend -> PNA: queue exhausted (the PNA stays a member of the instance
/// until reset, per the paper's lifecycle, but stops polling aggressively).
class NoTaskMessage final : public net::Message {
 public:
  explicit NoTaskMessage(InstanceId instance) : instance_(instance) {}

  [[nodiscard]] util::Bits wire_size() const override { return kHeaderBits; }
  [[nodiscard]] int tag() const override { return kTagNoTask; }

  [[nodiscard]] InstanceId instance() const { return instance_; }

 private:
  InstanceId instance_;
};

/// Aggregator -> Controller: consolidated status of every PNA that
/// reported during the last aggregation window. Wire size scales with the
/// number of entries (16 bytes each) — the bandwidth saving over raw
/// heartbeats comes from batching the per-message header.
class AggregateReportMessage final : public net::Message {
 public:
  struct Entry {
    std::uint64_t pna_id;
    PnaState state;
    InstanceId instance;
    /// Trace context of the consolidated heartbeat (transport metadata;
    /// not part of the modelled 16-byte entry payload).
    obs::TraceContext trace = {};
  };

  explicit AggregateReportMessage(std::vector<Entry> entries)
      : entries_(std::move(entries)) {}

  [[nodiscard]] util::Bits wire_size() const override {
    return kHeaderBits +
           util::Bits::from_bytes(
               static_cast<std::int64_t>(entries_.size()) * 16);
  }
  [[nodiscard]] int tag() const override { return kTagAggregateReport; }

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

/// Order-independent fingerprint of one ledger member. XORing the mixes of
/// every member yields a set checksum the aggregator and the Controller can
/// both compute without agreeing on iteration order; the SplitMix64-style
/// finalizer makes single-member differences visible in the XOR.
[[nodiscard]] inline std::uint64_t delta_member_mix(std::uint64_t pna_id,
                                                    PnaState state,
                                                    InstanceId instance) {
  std::uint64_t x = pna_id * 0x9E3779B97F4A7C15ull;
  x ^= static_cast<std::uint64_t>(state) * 0xBF58476D1CE4E5B9ull;
  x ^= instance * 0x94D049BB133111EBull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// RFC 1982-style serial comparison for the 32-bit delta epoch: the
/// successor of 0xFFFFFFFF is 0, so a long-lived aggregator wraps cleanly.
[[nodiscard]] constexpr bool epoch_follows(std::uint32_t next,
                                           std::uint32_t prev) {
  return static_cast<std::uint32_t>(next - prev) == 1u;
}

/// Aggregator -> Controller, delta mode: the membership changes observed
/// since the previous frame (kDelta), or the full checksummed ledger
/// (kResync). Frames from one origin carry a monotone (wrapping) epoch; a
/// gap tells the Controller a frame was lost and it must wait for the next
/// resync instead of silently diverging. `checksum` is the XOR of
/// `delta_member_mix` over the aggregator's entire ledger *after* this
/// frame, carried on resyncs so the Controller can verify reconstruction.
class DeltaReportMessage final : public net::Message {
 public:
  enum class Kind : std::uint8_t { kDelta = 0, kResync = 1 };
  enum class Op : std::uint8_t { kUpdate = 0, kExpire = 1 };

  struct Entry {
    std::uint64_t pna_id = 0;
    Op op = Op::kUpdate;
    PnaState state = PnaState::kIdle;
    InstanceId instance = kNoInstance;
    /// Trace context of the consolidated heartbeat (transport metadata;
    /// not part of the modelled 18-byte entry payload).
    obs::TraceContext trace = {};
  };

  DeltaReportMessage(std::uint32_t origin, std::uint32_t epoch, Kind kind,
                     std::uint64_t checksum, std::vector<Entry> entries)
      : origin_(origin),
        epoch_(epoch),
        kind_(kind),
        checksum_(checksum),
        entries_(std::move(entries)) {}

  /// Modelled frame payload: origin + epoch + kind + checksum (17 bytes)
  /// plus 18 bytes per entry (id, op/state, instance, like the naive
  /// report's 16 plus the op and change-set framing).
  [[nodiscard]] static util::Bits payload_bits(std::size_t entry_count) {
    return util::Bits::from_bytes(
        17 + static_cast<std::int64_t>(entry_count) * 18);
  }

  [[nodiscard]] util::Bits wire_size() const override {
    return kHeaderBits + payload_bits(entries_.size());
  }
  [[nodiscard]] int tag() const override { return kTagDeltaReport; }

  [[nodiscard]] std::uint32_t origin() const { return origin_; }
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }
  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] std::uint64_t checksum() const { return checksum_; }
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::uint32_t origin_;
  std::uint32_t epoch_;
  Kind kind_;
  std::uint64_t checksum_;
  std::vector<Entry> entries_;
};

/// Relay -> Controller: one aggregation window's worth of child delta
/// frames shipped under a single transport header (the relay tier's
/// bandwidth saving — frame payloads are forwarded verbatim, per-frame
/// headers are amortized away).
class DeltaBatchMessage final : public net::Message {
 public:
  explicit DeltaBatchMessage(
      std::vector<std::shared_ptr<const DeltaReportMessage>> frames)
      : frames_(std::move(frames)) {}

  [[nodiscard]] util::Bits wire_size() const override {
    util::Bits total = kHeaderBits;
    for (const auto& f : frames_) {
      total = total + DeltaReportMessage::payload_bits(f->entries().size());
    }
    return total;
  }
  [[nodiscard]] int tag() const override { return kTagDeltaBatch; }

  [[nodiscard]] const std::vector<std::shared_ptr<const DeltaReportMessage>>&
  frames() const {
    return frames_;
  }

 private:
  std::vector<std::shared_ptr<const DeltaReportMessage>> frames_;
};

/// Generic payload message used by the remote (BLASTCL3-style) workload:
/// a query shipped to a provisioned server and its answer.
class BlobMessage final : public net::Message {
 public:
  BlobMessage(int tag, std::uint64_t correlation, util::Bits payload)
      : tag_(tag), correlation_(correlation), payload_(payload) {}

  [[nodiscard]] util::Bits wire_size() const override {
    return kHeaderBits + payload_;
  }
  [[nodiscard]] int tag() const override { return tag_; }
  [[nodiscard]] std::uint64_t correlation() const { return correlation_; }

 private:
  int tag_;
  std::uint64_t correlation_;
  util::Bits payload_;
};

}  // namespace oddci::core

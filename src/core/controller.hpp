#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "broadcast/channel.hpp"
#include "control/policy.hpp"
#include "core/content_store.hpp"
#include "core/messages.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulation.hpp"

/// The OddCI Controller.
///
/// As instructed by the Provider, the Controller sets up instances by
/// formatting and sending control messages — including software images —
/// through the broadcast channel, and maintains them afterwards:
///  * consolidates heartbeats into per-PNA and per-instance state,
///  * trims oversized instances by answering heartbeats with unicast
///    resets,
///  * recomposes instances that lost members (receivers switched off) by
///    retransmitting wakeup messages with a recomputed probability,
///  * reports size changes to the Provider.
namespace oddci::core {

struct InstanceSpec {
  std::string name;
  std::size_t target_size = 0;
  util::Bits image_size;
  Requirements requirements;
  sim::SimTime heartbeat_interval = sim::SimTime::from_seconds(30);
  /// Idle-PNA handling probability for the first wakeup. Unset (the
  /// default) lets the decision engine pick one from the idle-pool
  /// estimate; a set value must lie in (0, 1].
  std::optional<double> initial_probability;
};

struct InstanceStatus {
  InstanceId id = kNoInstance;
  std::string name;
  bool active = false;
  std::size_t target_size = 0;
  std::size_t current_size = 0;
  sim::SimTime created_at;
  /// First time current_size reached target_size (instantiation latency).
  std::optional<sim::SimTime> reached_target_at;
  std::uint64_t wakeups_broadcast = 0;
  std::uint64_t unicast_resets = 0;
};

struct ControllerOptions {
  /// Control-loop policy: engine selection, maintenance cadence, staleness
  /// window, overshoot margin, Phi-driven admission and the per-engine
  /// knobs. Populated from SystemConfig::control.
  control::PolicyOptions policy;

  /// Deprecated aliases for the policy knobs that used to live here.
  /// A set alias is forwarded into `policy` (overriding it) with a
  /// one-time warning; prefer `policy.monitor_interval` & friends.
  std::optional<sim::SimTime> monitor_interval;
  std::optional<double> stale_factor;
  std::optional<double> overshoot_margin;

  /// `policy` with any set deprecated aliases applied (warns once per
  /// alias per process). Does not validate.
  [[nodiscard]] control::PolicyOptions effective_policy() const;

  /// Size of the PNA Xlet staged on the carousel.
  util::Bits pna_xlet_size = util::Bits::from_kilobytes(64);
  /// Heartbeat interval announced in the deployment hello (agents adopt
  /// per-instance intervals from later wakeups).
  sim::SimTime default_heartbeat = sim::SimTime::from_seconds(30);
  /// Carousel file names.
  std::string pna_file = "pna.xlet";
  std::string config_file = "oddci.config";
  /// AIT identity of the PNA trigger application.
  std::uint32_t pna_application_id = 0x4F44;  // "OD"
  std::string pna_application_name = "oddci-pna";
  /// Aggregator failover: an aggregator that has reported at least once
  /// but then stays silent this long is voided from the heartbeat routing
  /// (its PNAs re-home to the Controller) until it reports again. Zero
  /// disables failover (the pre-fault-injection behaviour).
  sim::SimTime aggregator_timeout = sim::SimTime::zero();
  /// Report encoding expected from the aggregation tier. kDelta switches
  /// the Controller to incremental membership: epoch-stamped delta frames
  /// are applied as they arrive, the monitor tick stops scanning the PNA
  /// slab, and staleness pruning is delegated to aggregator-side expiry
  /// (direct reporters — failover fallback — keep a windowed prune).
  HeartbeatMode heartbeat_mode = HeartbeatMode::kNaive;
};

/// Test hook: re-arm the one-time ControllerOptions alias deprecation
/// warnings.
void reset_controller_deprecation_warnings();

class Controller final : public net::Endpoint {
 public:
  Controller(sim::Simulation& simulation, net::Network& network,
             broadcast::BroadcastMedium& channel, ContentStore& store,
             broadcast::SigningKey key, const net::LinkSpec& link,
             ControllerOptions options = {});

  /// Multi-channel variant (Section 4.3: "multiple channels to distribute
  /// the trigger application increases the potential number of receivers
  /// connected, with a direct impact on the maximum size of the OddCI-DTV
  /// systems that can be instantiated"). Control messages and images are
  /// staged on every channel; receivers join from whichever channel they
  /// are tuned to.
  Controller(sim::Simulation& simulation, net::Network& network,
             std::vector<broadcast::BroadcastMedium*> channels,
             ContentStore& store, broadcast::SigningKey key,
             const net::LinkSpec& link, ControllerOptions options = {});
  ~Controller() override;

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  [[nodiscard]] net::NodeId node_id() const { return node_id_; }
  [[nodiscard]] broadcast::SigningKey signing_key() const { return key_; }
  [[nodiscard]] sim::Simulation& simulation() const { return simulation_; }

  /// Route PNA heartbeats through an aggregation tier: the node list is
  /// included in every subsequent control message, and each agent reports
  /// to aggregators[pna_id % size]. Must be called before deploy_pna() so
  /// the deployment hello already carries the routing. Pass an empty
  /// vector for direct reporting (the default).
  void set_aggregators(std::vector<net::NodeId> aggregators);

  /// Stage the PNA trigger application (AUTOSTART) on the carousel and
  /// start the maintenance loop. Must be called once before instances are
  /// created. A first signed "no-op" reset control message accompanies it
  /// so agents learn the Controller's address and begin heartbeating.
  void deploy_pna();

  [[nodiscard]] bool deployed() const { return deployed_; }

  /// Create an instance: stages image + wakeup config on the carousel and
  /// commits. Returns the new instance id. `parent` is the causal trace
  /// context of the Provider request that asked for the instance.
  InstanceId create_instance(const InstanceSpec& spec,
                             net::NodeId backend_node,
                             obs::TraceContext parent = {});

  /// Broadcast reset for the instance and drop its image from the carousel.
  void destroy_instance(InstanceId id);

  /// Change the target size; the maintenance loop grows/trims toward it.
  void resize_instance(InstanceId id, std::size_t new_target);

  /// Enable/disable recruiting for an instance. Disabling stops wakeup
  /// retransmissions (recomposition) AND replaces the on-air wakeup with a
  /// neutral control message, so returning receivers no longer join; the
  /// maintenance loop keeps pruning and trimming. Used to quiesce an
  /// instance and by the churn ablation.
  void set_recruiting(InstanceId id, bool recruiting);

  [[nodiscard]] const InstanceStatus* status(InstanceId id) const;
  [[nodiscard]] std::vector<InstanceStatus> all_statuses() const;

  /// PNAs that reported idle within the staleness window.
  [[nodiscard]] std::size_t idle_pool_estimate() const;
  /// All PNAs heard from within the staleness window.
  [[nodiscard]] std::size_t known_pna_count() const;

  /// PNAs whose most recent report was idle, maintained incrementally on
  /// state transitions (no staleness window, O(1)). This is the sampler's
  /// idle-pool probe; control decisions keep using the exact windowed
  /// idle_pool_estimate().
  [[nodiscard]] std::size_t idle_known() const { return idle_known_; }
  /// Confirmed members across all instances, maintained incrementally.
  [[nodiscard]] std::size_t total_member_count() const {
    return members_total_;
  }

  using SizeCallback =
      std::function<void(InstanceId, std::size_t current, std::size_t target)>;
  /// Invoked on every instance-membership change (Provider consumption).
  void set_size_callback(SizeCallback callback);

  /// Point-in-time view of the control-plane counters.
  struct Stats {
    std::uint64_t heartbeats_received = 0;
    std::uint64_t aggregate_reports_received = 0;
    std::uint64_t wakeup_broadcasts = 0;
    std::uint64_t reset_broadcasts = 0;
    std::uint64_t unicast_resets = 0;
    std::uint64_t recompositions = 0;
    std::uint64_t members_pruned = 0;
  };
  [[nodiscard]] Stats stats() const {
    return Stats{heartbeats_received_.value(),
                 aggregate_reports_received_.value(),
                 wakeup_broadcasts_.value(),
                 reset_broadcasts_.value(),
                 unicast_resets_.value(),
                 recompositions_.value(),
                 members_pruned_.value()};
  }
  /// Silent aggregators voided from the heartbeat routing / voided slots
  /// restored by a resumed report (aggregator_timeout > 0 only).
  [[nodiscard]] std::uint64_t aggregator_failovers() const {
    return aggregator_failovers_.value();
  }
  [[nodiscard]] std::uint64_t aggregator_restores() const {
    return aggregator_restores_.value();
  }

  /// Delta-mode protocol counters (all zero in naive mode).
  struct DeltaStats {
    std::uint64_t frames_received = 0;
    std::uint64_t entries_applied = 0;
    std::uint64_t expires_applied = 0;
    std::uint64_t resyncs_applied = 0;
    std::uint64_t gaps_detected = 0;
    std::uint64_t frames_skipped = 0;    ///< out-of-sync deltas discarded
    std::uint64_t resync_requests = 0;
    std::uint64_t checksum_failures = 0;
  };
  [[nodiscard]] DeltaStats delta_stats() const {
    return DeltaStats{delta_frames_received_.value(),
                      delta_entries_applied_.value(),
                      delta_expires_applied_.value(),
                      delta_resyncs_.value(),
                      delta_gaps_.value(),
                      delta_frames_skipped_.value(),
                      delta_resync_requests_.value(),
                      delta_checksum_failures_.value()};
  }

  /// Bytes of aggregate-report payload ingested (naive reports, delta
  /// frames, relay batches) — the O(changes)-vs-O(members) comparison the
  /// fan-out bench records.
  [[nodiscard]] std::uint64_t report_bytes_ingested() const {
    return report_bytes_ingested_.value();
  }

  /// Σ instance members across all instances, recomputed from the actual
  /// membership sets — the HealthAuditor compares this against the
  /// incrementally maintained total_member_count() to prove delta
  /// application reconstructed the view exactly.
  [[nodiscard]] std::size_t membership_view_count() const {
    std::size_t n = 0;
    for (const auto& [id, inst] : instances_) n += inst.members.size();
    return n;
  }

  /// Wall-clock seconds spent inside monitor_tick() so far (host time;
  /// never enters simulation state — bench telemetry only).
  [[nodiscard]] double monitor_wall_seconds() const {
    return monitor_wall_seconds_;
  }

  /// Join latency: wakeup broadcast -> confirmed member, per join.
  [[nodiscard]] const obs::LogHistogram& join_latency() const {
    return join_latency_;
  }

  /// Expose the control-plane counters, the join-latency histogram and the
  /// O(1) population probes under "controller.*" in `registry`. The
  /// controller must outlive any snapshot() call.
  void link_metrics(obs::MetricsRegistry& registry) const;

  /// The decision engine driving probability, trim and admission policy.
  [[nodiscard]] control::DecisionEngine& engine() { return *engine_; }
  [[nodiscard]] const control::DecisionEngine& engine() const {
    return *engine_;
  }
  /// The effective (alias-resolved, validated) policy options.
  [[nodiscard]] const control::PolicyOptions& policy() const {
    return options_.policy;
  }

  /// Attach a tracer: records an "instance.form" span per instance
  /// (wakeup broadcast -> target size reached). nullptr detaches.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Attach a flight recorder: every control-plane hop (format, member
  /// join, prune, trim, ready) is emitted as a causally linked trace
  /// event, and outgoing control messages carry the context on the wire.
  /// nullptr detaches.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

  /// The instance's root control trace context (zero if unknown or when
  /// no recorder is attached). The Backend chains task dispatch off this.
  [[nodiscard]] obs::TraceContext trace_context(InstanceId id) const;

  /// Fault injection: drop off the network and lose all in-flight state —
  /// the PNA directory and every instance's membership view. What a real
  /// Controller keeps in stable storage survives: instance specs, staged
  /// carousel content, the signing key, and the aggregator configuration.
  /// On restart() the membership view is rebuilt purely from resumed
  /// heartbeats (the paper's consolidation loop doubling as crash
  /// recovery).
  void crash();
  void restart();
  [[nodiscard]] bool crashed() const { return crashed_; }

  /// Fault injection: replace the on-air control message with a tampered
  /// copy (stale signature -> every receiver's verification fails; the
  /// VerifyCache memoizes the rejection under the tampered digest, so the
  /// legitimate generation's cache entry is never poisoned). Returns false
  /// when nothing is on air or a corruption is already active.
  bool corrupt_on_air_control();
  /// Put the legitimate on-air generation back.
  void restore_on_air_control();

  // --- net::Endpoint -------------------------------------------------------
  void on_message(net::NodeId from, const net::MessagePtr& message) override;

 private:
  /// Delta mode: PnaRecord::origin value for direct reporters (failover
  /// fallback path) and for records no aggregator has claimed.
  static constexpr std::uint32_t kDirectOrigin = 0xFFFFFFFFu;

  struct PnaRecord {
    PnaState state = PnaState::kIdle;
    /// A dense slot exists for every id below the high-water mark; only
    /// slots that actually reported are real records.
    bool known = false;
    /// Delta mode: a trim reset was just sent; one in-flight busy report
    /// (emitted by the aggregator before it learned of the reset) may
    /// still arrive and must not re-add the member.
    bool suppress_busy = false;
    /// Delta mode: already listed in direct_ids_ (dedup for the direct
    /// reporters' staleness walk).
    bool direct_listed = false;
    InstanceId instance = kNoInstance;
    sim::SimTime last_seen;
    /// Delta mode: the aggregator slice this record belongs to
    /// (kDirectOrigin = heard directly).
    std::uint32_t origin = kDirectOrigin;
    /// Delta mode: stamp of the last resync that listed this record
    /// (mark-and-sweep slice replacement).
    std::uint32_t resync_mark = 0;
  };

  /// Dense cap for the PNA directory: ids are direct-channel addresses
  /// (small and contiguous by construction), so the directory is a flat
  /// vector — 24 bytes per agent instead of a hash node per agent. Huge
  /// or foreign ids spill to an overflow map.
  static constexpr std::uint64_t kMaxDensePnas = 1ull << 22;

  /// Record for `id`, creating it if unseen. second = newly created.
  std::pair<PnaRecord&, bool> ensure_pna(std::uint64_t id);
  [[nodiscard]] const PnaRecord* find_pna(std::uint64_t id) const;
  /// Walk every known record (dense then overflow).
  template <typename Fn>
  void for_each_pna(Fn&& fn) const {
    for (const PnaRecord& rec : pna_dense_) {
      if (rec.known) fn(rec);
    }
    for (const auto& [id, rec] : pna_overflow_) fn(rec);
  }

  struct Instance {
    InstanceStatus status;
    InstanceSpec spec;
    ImageSpec image;
    net::NodeId backend_node = net::kInvalidNode;
    /// PNAs executing the instance's image (the instance's actual size).
    std::unordered_set<std::uint64_t> members;
    /// PNAs that accepted the wakeup and are still loading the image;
    /// counted against the recruitment deficit but not as members.
    std::unordered_set<std::uint64_t> joining;
    /// Members we still owe a unicast reset (trimming).
    std::size_t pending_trims = 0;
    /// Members the most recent maintenance tick pruned (churn signal for
    /// the decision engine's observation).
    std::size_t pruned_last_tick = 0;
    /// Delta mode: expiry-driven member removals since the last tick
    /// (they arrive as messages between ticks; the tick rolls them into
    /// pruned_last_tick so the engine's churn signal keeps its meaning).
    std::size_t pruned_since_tick = 0;
    bool recruiting = true;
    /// Last wakeup broadcast, for recomposition rate-limiting: a retransmit
    /// sooner than the expected acquisition time would bump the carousel
    /// config version before slow receivers finish reading it.
    sim::SimTime last_wakeup_at;
    /// Context of the instance's initial control.format event; later
    /// lifecycle events (ready, prune, recomposition) chain off it.
    obs::TraceContext trace;
  };

  /// Signs and airs `message`; the returned context is that of the
  /// control.format trace event (zero when no recorder is attached).
  /// `message.trace` is read as the causal parent and overwritten with
  /// the new context before the message hits the carousel.
  obs::TraceContext broadcast_control(const ControlMessage& message);
  void stage_and_commit();
  void monitor_tick();
  /// Phase 1 of the maintenance tick: drop members/joiners whose
  /// heartbeats fell outside the staleness window. Runs for every active
  /// instance before any policy decision so the engine never observes a
  /// stale membership snapshot.
  void prune_instance(InstanceId id, Instance& inst);
  void note_member_change(Instance& instance);
  /// Telemetry snapshot handed to the decision engine. `idle_pool` is the
  /// caller's windowed estimate (scanning is the recruitment path's cost;
  /// trim-side observations pass 0).
  [[nodiscard]] control::ControlObservation observe(
      InstanceId id, const Instance& inst, std::size_t idle_pool) const;
  [[nodiscard]] sim::SimTime staleness_horizon(const Instance& inst) const;
  PnaRecord& handle_status(std::uint64_t pna_id, PnaState state,
                           InstanceId instance, net::NodeId reply_to,
                           obs::TraceContext trace = {});
  /// A consolidated report arrived from `from`: refresh its liveness and
  /// restore it into the routing if it had been failed over.
  void note_aggregator_alive(net::NodeId from);
  /// Same, keyed by tier index (delta frames carry their origin, so
  /// liveness survives relays re-sending them from another node id).
  void note_origin_alive(std::size_t origin);

  // --- delta-mode incremental membership -----------------------------------
  struct OriginState {
    std::uint32_t expected_epoch = 0;  ///< epoch the next delta must carry
    bool synced = false;               ///< false until a resync is applied
    bool resync_requested = false;     ///< outstanding downstream request
    /// Ids attributed to this origin (lazily compacted; rebuilt from each
    /// resync frame).
    std::vector<std::uint64_t> ids;
  };
  void apply_delta_frame(const DeltaReportMessage& frame);
  void apply_delta_entry(std::uint32_t origin,
                         const DeltaReportMessage::Entry& entry,
                         bool in_resync);
  /// Forget a record entirely: membership, idle mirror, directory slot.
  void remove_record(std::uint64_t pna_id);
  /// Ask an out-of-sync origin for a full frame on its next flush (sent at
  /// most once per desync period).
  void request_resync(std::uint32_t origin, OriginState& os);
  /// Delta mode's phase-1 staleness pass: only direct reporters need a
  /// windowed scan (aggregator-covered members are expired upstream).
  void prune_direct();
  /// Delta mode's trimming: the Controller only hears *changes*, so
  /// steady-state members never re-report and trim-on-heartbeat would
  /// starve; resets go out by unicast to chosen members immediately.
  void trim_direct(Instance& inst, std::size_t count);
  /// Idle-pool feed for recruitment decisions: the windowed O(population)
  /// scan in naive mode, the O(1) incremental mirror in delta mode (kept
  /// fresh by aggregator expiries + the direct prune).
  [[nodiscard]] std::size_t recruitment_idle_pool() const;
  [[nodiscard]] PnaRecord* find_pna_mutable(std::uint64_t id);
  void monitor_tick_impl();
  /// Re-air the deployment hello so PNAs pick up the current (possibly
  /// failover-voided) aggregator routing.
  void rebroadcast_routing();

  sim::Simulation& simulation_;
  net::Network& network_;
  std::vector<broadcast::BroadcastMedium*> channels_;
  ContentStore& store_;
  broadcast::SigningKey key_;
  ControllerOptions options_;
  /// Policy decisions delegated behind the DecisionEngine interface
  /// (selected by options_.policy.engine; StaticPolicy by default).
  std::unique_ptr<control::DecisionEngine> engine_;
  net::NodeId node_id_ = net::kInvalidNode;

  bool deployed_ = false;
  bool crashed_ = false;
  /// Live routing, stamped into every outgoing control message; a slot is
  /// kInvalidNode while its aggregator is failed over (PNAs mapping to it
  /// fall back to the Controller).
  std::vector<net::NodeId> aggregators_;
  /// The configured tier, immutable after set_aggregators (restore source).
  std::vector<net::NodeId> aggregator_nodes_;
  std::vector<sim::SimTime> aggregator_last_seen_;
  /// Failover only triggers for aggregators heard from at least once, so a
  /// quiet warmup can't void the whole tier.
  std::vector<bool> aggregator_reported_;
  /// Content id of the tampered control payload while a corruption is on
  /// air (0 = none).
  std::uint64_t corrupted_content_ = 0;
  std::uint64_t last_config_content_ = 0;
  InstanceId next_instance_ = 1;
  std::uint64_t next_image_ = 1;
  std::unordered_map<InstanceId, Instance> instances_;
  /// PNA directory: dense by id with an overflow map (see kMaxDensePnas).
  std::vector<PnaRecord> pna_dense_;
  std::unordered_map<std::uint64_t, PnaRecord> pna_overflow_;
  std::size_t pnas_known_ = 0;
  /// Default staleness window for idle-pool estimation (set from the most
  /// recent instance's heartbeat interval; falls back to 30 s).
  sim::SimTime default_heartbeat_ = sim::SimTime::from_seconds(30);

  sim::PeriodicTask monitor_;
  bool monitor_running_ = false;
  SizeCallback size_callback_;

  // Control-plane metric cells (see stats()/link_metrics()).
  obs::Counter heartbeats_received_;
  obs::Counter aggregate_reports_received_;
  obs::Counter wakeup_broadcasts_;
  obs::Counter reset_broadcasts_;
  obs::Counter unicast_resets_;
  obs::Counter recompositions_;
  obs::Counter members_pruned_;
  obs::Counter aggregator_failovers_;
  obs::Counter aggregator_restores_;
  // Delta-mode cells (registered only when heartbeat_mode == kDelta).
  obs::Counter delta_frames_received_;
  obs::Counter delta_entries_applied_;
  obs::Counter delta_expires_applied_;
  obs::Counter delta_resyncs_;
  obs::Counter delta_gaps_;
  obs::Counter delta_frames_skipped_;
  obs::Counter delta_resync_requests_;
  obs::Counter delta_checksum_failures_;
  /// Registered in both modes: the naive-vs-delta ingest comparison.
  obs::Counter report_bytes_ingested_;
  /// Per-origin delta protocol state and the direct reporters' worklist.
  std::vector<OriginState> origins_;
  std::vector<std::uint64_t> direct_ids_;
  std::uint32_t resync_mark_counter_ = 0;
  double monitor_wall_seconds_ = 0.0;
  obs::LogHistogram join_latency_{1e-3};
  /// Incremental mirrors of the membership maps (O(1) sampler probes).
  std::size_t idle_known_ = 0;
  std::size_t members_total_ = 0;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace oddci::core

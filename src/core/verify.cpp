#include "core/verify.hpp"

#include <algorithm>
#include <stdexcept>

namespace oddci::core {

namespace {
void check_probability(double value, const char* what) {
  if (value < 0.0 || value > 1.0) {
    throw std::invalid_argument(std::string(what) + " must be in [0, 1]");
  }
}
}  // namespace

void VerifyOptions::validate() const {
  if (redundancy == 0 || trusted_redundancy == 0) {
    throw std::invalid_argument(
        "verify: redundancy and trusted_redundancy must be >= 1");
  }
  if (max_redundancy < redundancy) {
    throw std::invalid_argument(
        "verify: max_redundancy must be >= redundancy");
  }
  if (trusted_redundancy > redundancy) {
    throw std::invalid_argument(
        "verify: trusted_redundancy must be <= redundancy (it is the "
        "earned discount)");
  }
  check_probability(spot_check_rate, "verify spot_check_rate");
  check_probability(ewma_alpha, "verify ewma_alpha");
  check_probability(initial_reputation, "verify initial_reputation");
  check_probability(quarantine_below, "verify quarantine_below");
  check_probability(trusted_above, "verify trusted_above");
  if (quarantine_spot_boost < 0.0) {
    throw std::invalid_argument("verify: quarantine_spot_boost must be >= 0");
  }
  if (implausible_speedup < 0.0) {
    throw std::invalid_argument("verify: implausible_speedup must be >= 0");
  }
  if (quarantine_below >= trusted_above) {
    throw std::invalid_argument(
        "verify: quarantine_below must be < trusted_above");
  }
  if (parole_checks == 0) {
    throw std::invalid_argument("verify: parole_checks must be >= 1");
  }
}

std::string_view to_string(ReputationState state) {
  switch (state) {
    case ReputationState::kProbation:
      return "probation";
    case ReputationState::kTrusted:
      return "trusted";
    case ReputationState::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

Verifier::Verifier(sim::Simulation& simulation, VerifyOptions options,
                   std::uint64_t seed)
    : simulation_(&simulation), options_(options), rng_(seed) {
  options_.validate();
}

void Verifier::link_metrics(obs::MetricsRegistry& registry) {
  registry.link_counter("verify.dispatches", dispatched_);
  registry.link_counter("verify.verified_votes", verified_);
  registry.link_counter("verify.outvoted_votes", outvoted_);
  registry.link_counter("verify.discarded_replicas", discarded_);
  registry.link_counter("verify.tasks_verified", tasks_verified_);
  registry.link_counter("verify.wrong_results", wrong_results_);
  registry.link_counter("verify.escalations", escalations_);
  registry.link_counter("verify.rounds_discarded", rounds_discarded_);
  registry.link_counter("verify.spot_dispatches", spot_dispatched_);
  registry.link_counter("verify.spot_passed", spot_passed_);
  registry.link_counter("verify.spot_failed", spot_failed_);
  registry.link_counter("verify.spot_stale", spot_stale_);
  registry.link_counter("verify.polls_denied", polls_denied_);
  registry.link_counter("verify.region_relaxed", region_relaxed_);
  registry.link_counter("verify.implausible_returns", implausible_returns_);
  registry.link_counter("reputation.quarantines", quarantines_);
  registry.link_counter("reputation.paroles", paroles_);
  registry.link_counter("reputation.trusted_promotions", trusted_promotions_);
  registry.link_probe("reputation.quarantined_now", [this] {
    return static_cast<double>(quarantined_now_);
  });
  registry.link_probe("verify.overhead_estimate",
                      [this] { return overhead_estimate(); });
}

void Verifier::begin_job(InstanceId instance, const workload::Job* job) {
  // Flush the previous job's unresolved volatile state: those replicas and
  // votes will never conclude, so the conservation identity books them as
  // discarded (the durable reputation ledger persists untouched).
  discarded_ += outstanding_live_ + votes_pending_;
  outstanding_live_ = 0;
  votes_pending_ = 0;
  tasks_.clear();
  spot_flushed_ += spot_outstanding_.size();
  spot_outstanding_.clear();
  instance_ = instance;
  job_ = job;
  task_count_ = job != nullptr ? job->tasks.size() : 0;
  next_spot_index_ = task_count_;
}

Verifier::PollGate Verifier::poll_gate(std::uint64_t pna_id) {
  const ReputationEntry* e = reputation(pna_id);
  if (e != nullptr && e->state == ReputationState::kQuarantined) {
    // Spot-check-only duty, rate-limited: a parole slot some of the time,
    // NoTask otherwise — a fast-returning adversary cannot grind the
    // dispatcher into feeding it unlimited spot work. An agent that has
    // burned its parole-failure budget gets no probes at all (permanent
    // quarantine): every failed probe was a wasted dispatch, and honest
    // nodes pass probes rather than fail them.
    if (options_.parole_failure_limit > 0 &&
        e->parole_failures >= options_.parole_failure_limit) {
      ++polls_denied_;
      return PollGate::kDeny;
    }
    const double p =
        std::min(1.0, options_.spot_check_rate * options_.quarantine_spot_boost);
    if (rng_.bernoulli(p)) return PollGate::kSpot;
    ++polls_denied_;
    return PollGate::kDeny;
  }
  return rng_.bernoulli(options_.spot_check_rate) ? PollGate::kSpot
                                                  : PollGate::kTask;
}

Verifier::SpotTask Verifier::make_spot_check(std::uint64_t pna_id) {
  SpotTask spot;
  spot.index = next_spot_index_++;
  if (job_ != nullptr && !job_->tasks.empty()) {
    // Clone a seeded-random real task's parameters so the spot check is
    // indistinguishable from real work on the wire and in execution time.
    const workload::Task& tpl =
        job_->tasks[rng_.uniform_u64(job_->tasks.size())];
    spot.input_size = tpl.input_size;
    spot.result_size = tpl.result_size;
    spot.reference_seconds = tpl.reference_seconds;
  }
  spot_outstanding_.emplace(spot.index, pna_id);
  ++spot_dispatched_;
  return spot;
}

bool Verifier::needs_replica(std::uint64_t index) const {
  const auto it = tasks_.find(index);
  if (it == tasks_.end()) return true;  // first dispatch ever
  const TaskState& task = it->second;
  if (task.concluded) return false;
  return task.live + task.votes.size() < task.target;
}

bool Verifier::may_assign(std::uint64_t index, std::uint64_t pna_id,
                          bool region_strict) const {
  if (!needs_replica(index)) return false;
  const auto it = tasks_.find(index);
  if (it == tasks_.end()) return true;
  const TaskState& task = it->second;
  // Hard rule: a PNA votes at most once per task, ever — a colluder can
  // never stack a quorum alone, and a re-voted round never re-trusts a
  // node that already weighed in.
  if (std::find(task.servers.begin(), task.servers.end(), pna_id) !=
      task.servers.end()) {
    return false;
  }
  if (region_strict && region_fn_) {
    // Collusion-correlation rule: no two replicas of one task from the
    // same aggregator region when avoidable (colluding groups are modeled
    // as region-correlated, see fault::ByzantineTable).
    const std::uint32_t region = region_fn_(pna_id);
    for (const Vote& vote : task.votes) {
      if (vote.region == region) return false;
    }
    for (const std::uint64_t server : task.servers) {
      if (region_fn_(server) == region) return false;
    }
  }
  return true;
}

Verifier::Dispatch Verifier::on_dispatch(std::uint64_t index,
                                         std::uint64_t pna_id) {
  TaskState& task = tasks_[index];
  if (task.replicas_ever == 0) {
    // Quorum size decided at first dispatch: a trusted first assignee
    // earns the reduced-redundancy discount for the whole task.
    const ReputationEntry* e = reputation(pna_id);
    const bool trusted =
        e != nullptr && e->state == ReputationState::kTrusted;
    task.target =
        trusted ? options_.trusted_redundancy : options_.redundancy;
  } else if (task.target == 0) {
    task.target = options_.redundancy;
  }
  Dispatch dispatch;
  dispatch.replica = task.replicas_ever++;
  task.servers.push_back(pna_id);
  ++task.live;
  ++dispatched_;
  ++outstanding_live_;
  // Sequential quorum (the default): the task leaves the queue until this
  // replica's vote lands; on_result's kPending verdict re-queues it when
  // another replica is still wanted.
  dispatch.more_replicas = options_.eager_replicas &&
                           task.live + task.votes.size() < task.target;
  return dispatch;
}

Verifier::Verdict Verifier::on_result(std::uint64_t index,
                                      std::uint64_t pna_id,
                                      std::uint64_t digest,
                                      obs::TraceContext trace,
                                      double elapsed_seconds) {
  if (options_.implausible_speedup > 0.0 && elapsed_seconds >= 0.0 &&
      job_ != nullptr && index < task_count_) {
    // Plausibility floor: no device in the fleet computes this task that
    // much faster than the reference machine, so an instant return is a
    // fabricated result regardless of how the quorum lands. The ledger
    // learns immediately; the vote still runs through the quorum below.
    const double floor =
        job_->tasks[index].reference_seconds / options_.implausible_speedup;
    if (elapsed_seconds < floor) {
      ++implausible_returns_;
      update_reputation(pna_id, /*agree=*/false, /*spot=*/false);
    }
  }
  TaskState& task = tasks_[index];
  if (task.live > 0) --task.live;
  if (outstanding_live_ > 0) --outstanding_live_;
  if (task.concluded) {
    // A straggler replica of an already-decided task: its dispatch has
    // been accounted verified/outvoted/discarded already, so write this
    // arrival off as discarded to keep the identity closed.
    ++discarded_;
    Verdict verdict;
    verdict.outcome = Verdict::Outcome::kPending;
    return verdict;
  }
  task.votes.push_back(Vote{pna_id, region_of(pna_id), digest, trace});
  ++votes_pending_;
  if (task.votes.size() == 1 && task.target == options_.redundancy &&
      options_.trusted_redundancy < options_.redundancy) {
    // Trusted-word discount, applied at vote time: if the round's first
    // vote was cast by a node with earned kTrusted standing, shrink the
    // quorum to the trusted target — promotion that happened after this
    // task's first dispatch still pays off. Escalated rounds (target >
    // redundancy) never take the shortcut.
    const ReputationEntry* e = reputation(pna_id);
    if (e != nullptr && e->state == ReputationState::kTrusted) {
      task.target = options_.trusted_redundancy;
    }
  }
  if (task.votes.size() < task.target) {
    Verdict verdict;
    verdict.outcome = Verdict::Outcome::kPending;
    // Sequential quorum: ask the Backend to re-queue the task when the
    // round still wants replicas that are neither live nor voted.
    verdict.requeue = task.live + task.votes.size() < task.target;
    return verdict;
  }
  return conclude(index, task, trace);
}

Verifier::Verdict Verifier::conclude(std::uint64_t index, TaskState& task,
                                     obs::TraceContext trace) {
  // Strict-majority vote over the digests of this round.
  std::uint64_t winner = 0;
  std::size_t winner_count = 0;
  for (const Vote& vote : task.votes) {
    std::size_t count = 0;
    for (const Vote& other : task.votes) {
      if (other.digest == vote.digest) ++count;
    }
    if (count > winner_count) {
      winner_count = count;
      winner = vote.digest;
    }
  }
  Verdict verdict;
  if (winner_count * 2 > task.votes.size()) {
    // Quorum reached: settle every vote and the reputation of its caster.
    task.concluded = true;
    votes_pending_ -= task.votes.size();
    obs::TraceContext quorum_parent = trace;
    for (const Vote& vote : task.votes) {
      const bool agreed = vote.digest == winner;
      if (agreed) {
        ++verified_;
        quorum_parent = vote.trace;
      } else {
        ++outvoted_;
        emit(obs::TraceEventKind::kVerifyOutvoted, vote.trace, vote.pna_id,
             index);
      }
      update_reputation(vote.pna_id, agreed, /*spot=*/false);
    }
    emit(obs::TraceEventKind::kVerifyQuorum, quorum_parent, winner_count,
         index);
    ++tasks_verified_;
    verdict.outcome = Verdict::Outcome::kAccepted;
    verdict.wrong =
        winner != fault::honest_result_digest(instance_, index);
    if (verdict.wrong) ++wrong_results_;
    task.votes.clear();
    task.votes.shrink_to_fit();
    return verdict;
  }
  if (task.target < options_.max_redundancy) {
    // Tie (e.g. a 2-quorum split): widen the vote by one replica. This is
    // a re-vote, not a retry — the Backend books it separately so a noisy
    // quorum never trips the per-task retry cap.
    ++task.target;
    ++escalations_;
    emit(obs::TraceEventKind::kVerifyEscalated, trace, task.target, index);
    verdict.outcome = Verdict::Outcome::kEscalated;
    verdict.requeue = true;
    return verdict;
  }
  // No majority even at the ceiling: drop the whole round and re-vote from
  // scratch (the per-task server history still excludes everyone who
  // already participated).
  discarded_ += task.votes.size();
  votes_pending_ -= task.votes.size();
  task.votes.clear();
  task.target = options_.redundancy;
  ++rounds_discarded_;
  verdict.outcome = Verdict::Outcome::kDiscarded;
  verdict.requeue = true;
  return verdict;
}

void Verifier::on_spot_result(std::uint64_t index, std::uint64_t pna_id,
                              std::uint64_t digest) {
  const auto it = spot_outstanding_.find(index);
  if (it == spot_outstanding_.end() || it->second != pna_id) {
    ++spot_stale_;
    return;
  }
  spot_outstanding_.erase(it);
  const bool pass = digest == fault::honest_result_digest(instance_, index);
  if (pass) {
    ++spot_passed_;
  } else {
    ++spot_failed_;
    emit(obs::TraceEventKind::kVerifySpotFailed, {}, pna_id, index);
  }
  update_reputation(pna_id, pass, /*spot=*/true);
}

void Verifier::on_replica_lost(std::uint64_t index) {
  auto it = tasks_.find(index);
  if (it == tasks_.end()) return;
  TaskState& task = it->second;
  if (task.live > 0) --task.live;
  if (outstanding_live_ > 0) --outstanding_live_;
  ++discarded_;
}

void Verifier::on_crash() {
  // Volatile quorum state dies with the process: every live replica and
  // every unresolved vote is written off (the ledger is durable).
  discarded_ += outstanding_live_ + votes_pending_;
  outstanding_live_ = 0;
  votes_pending_ = 0;
  for (auto& [index, task] : tasks_) {
    task.live = 0;
    task.votes.clear();
    if (!task.concluded) task.target = options_.redundancy;
  }
  spot_flushed_ += spot_outstanding_.size();
  spot_outstanding_.clear();
}

double Verifier::overhead_estimate() const {
  if (tasks_verified_.value() >= 16) {
    const double total = static_cast<double>(dispatched_.value() +
                                             spot_dispatched_.value());
    return std::max(1.0, total /
                             static_cast<double>(tasks_verified_.value()));
  }
  return std::max(1.0, static_cast<double>(options_.redundancy));
}

const ReputationEntry* Verifier::reputation(std::uint64_t pna_id) const {
  const auto it = ledger_.find(pna_id);
  return it != ledger_.end() ? &it->second : nullptr;
}

ReputationEntry& Verifier::entry(std::uint64_t pna_id) {
  auto [it, inserted] = ledger_.try_emplace(pna_id);
  if (inserted) {
    it->second.score = options_.initial_reputation;
    it->second.epoch = epoch_;
  }
  return it->second;
}

void Verifier::update_reputation(std::uint64_t pna_id, bool agree,
                                 bool spot) {
  ReputationEntry& e = entry(pna_id);
  e.score = (1.0 - options_.ewma_alpha) * e.score +
            options_.ewma_alpha * (agree ? 1.0 : 0.0);
  ++e.observations;
  if (e.state == ReputationState::kQuarantined) {
    // Only spot checks (the precomputed-answer probes) can parole: a
    // quarantined node gets no real replicas, so agreement evidence from
    // pre-quarantine dispatches cannot launder its standing.
    if (!spot) return;
    if (!agree) {
      e.parole_streak = 0;
      ++e.parole_failures;
      return;
    }
    if (++e.parole_streak >= options_.parole_checks) {
      e.state = ReputationState::kProbation;
      e.score = options_.initial_reputation;
      e.parole_streak = 0;
      e.parole_failures = 0;
      e.epoch = ++epoch_;
      if (quarantined_now_ > 0) --quarantined_now_;
      ++paroles_;
      emit(obs::TraceEventKind::kReputationParoled, {}, pna_id, e.epoch);
    }
    return;
  }
  if (e.score < options_.quarantine_below) {
    e.state = ReputationState::kQuarantined;
    e.parole_streak = 0;
    e.epoch = ++epoch_;
    ++quarantined_now_;
    ++quarantines_;
    emit(obs::TraceEventKind::kReputationQuarantined, {}, pna_id, e.epoch);
    return;
  }
  if (e.state == ReputationState::kProbation &&
      e.score >= options_.trusted_above &&
      e.observations >= options_.min_observations) {
    e.state = ReputationState::kTrusted;
    e.epoch = ++epoch_;
    ++trusted_promotions_;
  } else if (e.state == ReputationState::kTrusted &&
             e.score < options_.trusted_above) {
    e.state = ReputationState::kProbation;
    e.epoch = ++epoch_;
  }
}

Verifier::Stats Verifier::stats() const {
  Stats s;
  s.dispatched = dispatched_.value();
  s.verified = verified_.value();
  s.outvoted = outvoted_.value();
  s.discarded = discarded_.value();
  s.outstanding = outstanding_live_ + votes_pending_;
  s.tasks_verified = tasks_verified_.value();
  s.wrong_results = wrong_results_.value();
  s.escalations = escalations_.value();
  s.rounds_discarded = rounds_discarded_.value();
  s.spot_dispatched = spot_dispatched_.value();
  s.spot_passed = spot_passed_.value();
  s.spot_failed = spot_failed_.value();
  s.spot_flushed = spot_flushed_.value();
  s.spot_outstanding = spot_outstanding_.size();
  s.polls_denied = polls_denied_.value();
  s.region_relaxed = region_relaxed_.value();
  s.implausible_returns = implausible_returns_.value();
  s.quarantines = quarantines_.value();
  s.paroles = paroles_.value();
  s.trusted_promotions = trusted_promotions_.value();
  s.quarantined_now = quarantined_now_;
  return s;
}

void Verifier::emit(obs::TraceEventKind kind, obs::TraceContext parent,
                    std::uint64_t actor, std::uint64_t arg) {
  if (recorder_ == nullptr) return;
  recorder_->emit(simulation_->now(), kind, obs::TraceComponent::kBackend,
                  parent, actor, arg);
}

}  // namespace oddci::core

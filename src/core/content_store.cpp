#include "core/content_store.hpp"

#include "core/wire.hpp"

namespace oddci::core {

std::uint64_t ContentStore::put_control(const ControlMessage& message) {
  const std::uint64_t id = next_id_++;
  blobs_.emplace(id, wire::encode(message));
  return id;
}

std::optional<ControlMessage> ContentStore::get_control(
    std::uint64_t id) const {
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return std::nullopt;
  try {
    return wire::decode_control(it->second);
  } catch (const wire::WireError&) {
    return std::nullopt;
  }
}

const std::string* ContentStore::get_bytes(std::uint64_t id) const {
  auto it = blobs_.find(id);
  return it == blobs_.end() ? nullptr : &it->second;
}

bool ContentStore::remove(std::uint64_t id) { return blobs_.erase(id) > 0; }

}  // namespace oddci::core

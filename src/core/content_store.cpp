#include "core/content_store.hpp"

#include <mutex>
#include <utility>

namespace oddci::core {

std::uint64_t ContentStore::put_control(const ControlMessage& message) {
  const std::uint64_t id = next_id_++;
  // Count buffer reuse from the second encode on (a fresh Writer's string
  // may report small-buffer capacity without any heap allocation to reuse).
  if (writer_used_) writer_reuses_.inc();
  writer_used_ = true;
  writer_.clear();
  wire::encode_into(message, writer_);
  if (!concurrent_) {
    blobs_.emplace(id, writer_.bytes());
    return id;
  }
  // Concurrent mode: decode eagerly so readers on other shards always find
  // a memoized entry and never mutate the maps under a shared lock.
  PreparedControlPtr prepared;
  try {
    prepared = PreparedControl::make(wire::decode_control(writer_.bytes()));
  } catch (const wire::WireError&) {
    prepared = nullptr;
  }
  std::unique_lock lock(mutex_);
  blobs_.emplace(id, writer_.bytes());
  if (prepared != nullptr) prepared_.emplace(id, std::move(prepared));
  return id;
}

std::optional<ControlMessage> ContentStore::get_control(
    std::uint64_t id) const {
  std::shared_lock lock(mutex_, std::defer_lock);
  if (concurrent_) lock.lock();
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return std::nullopt;
  try {
    return wire::decode_control(it->second);
  } catch (const wire::WireError&) {
    return std::nullopt;
  }
}

PreparedControlPtr ContentStore::get_control_shared(std::uint64_t id) const {
  if (concurrent_) {
    std::shared_lock lock(mutex_);
    auto hit = prepared_.find(id);
    if (hit != prepared_.end()) return hit->second;
    // Only blobs stored before set_concurrent(true) lack a memo entry;
    // decode without memoizing rather than write under a shared lock.
    auto it = blobs_.find(id);
    if (it == blobs_.end()) return nullptr;
    try {
      return PreparedControl::make(wire::decode_control(it->second));
    } catch (const wire::WireError&) {
      return nullptr;
    }
  }
  auto hit = prepared_.find(id);
  if (hit != prepared_.end()) return hit->second;
  auto it = blobs_.find(id);
  if (it == blobs_.end()) return nullptr;
  try {
    auto prepared = PreparedControl::make(wire::decode_control(it->second));
    prepared_.emplace(id, prepared);
    return prepared;
  } catch (const wire::WireError&) {
    return nullptr;
  }
}

const std::string* ContentStore::get_bytes(std::uint64_t id) const {
  std::shared_lock lock(mutex_, std::defer_lock);
  if (concurrent_) lock.lock();
  auto it = blobs_.find(id);
  return it == blobs_.end() ? nullptr : &it->second;
}

bool ContentStore::remove(std::uint64_t id) {
  std::unique_lock lock(mutex_, std::defer_lock);
  if (concurrent_) lock.lock();
  prepared_.erase(id);
  return blobs_.erase(id) > 0;
}

}  // namespace oddci::core

#include "core/wire.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace oddci::core::wire {

namespace {

template <typename T>
void append_le(std::string& out, T v) {
  char raw[sizeof(T)];
  std::memcpy(raw, &v, sizeof(T));
  if constexpr (std::endian::native == std::endian::big) {
    std::reverse(std::begin(raw), std::end(raw));
  }
  out.append(raw, sizeof(T));
}

template <typename T>
T read_le(std::string_view data, std::size_t pos) {
  T v;
  char raw[sizeof(T)];
  std::memcpy(raw, data.data() + pos, sizeof(T));
  if constexpr (std::endian::native == std::endian::big) {
    std::reverse(std::begin(raw), std::end(raw));
  }
  std::memcpy(&v, raw, sizeof(T));
  return v;
}

}  // namespace

Writer& Writer::u8(std::uint8_t v) {
  out_.push_back(static_cast<char>(v));
  return *this;
}
Writer& Writer::u32(std::uint32_t v) {
  append_le(out_, v);
  return *this;
}
Writer& Writer::u64(std::uint64_t v) {
  append_le(out_, v);
  return *this;
}
Writer& Writer::i64(std::int64_t v) {
  append_le(out_, v);
  return *this;
}
Writer& Writer::f64(double v) {
  append_le(out_, v);
  return *this;
}
Writer& Writer::str(std::string_view s) {
  if (s.size() > 0xFFFFFFFFull) {
    throw WireError("Writer: string too long");
  }
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s.data(), s.size());
  return *this;
}

void Reader::need(std::size_t n) const {
  if (pos_ + n > data_.size()) {
    throw WireError("Reader: truncated input");
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}
std::uint32_t Reader::u32() {
  need(4);
  const auto v = read_le<std::uint32_t>(data_, pos_);
  pos_ += 4;
  return v;
}
std::uint64_t Reader::u64() {
  need(8);
  const auto v = read_le<std::uint64_t>(data_, pos_);
  pos_ += 8;
  return v;
}
std::int64_t Reader::i64() {
  need(8);
  const auto v = read_le<std::int64_t>(data_, pos_);
  pos_ += 8;
  return v;
}
double Reader::f64() {
  need(8);
  const auto v = read_le<double>(data_, pos_);
  pos_ += 8;
  return v;
}
std::string Reader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

// --- control plane ---------------------------------------------------------

namespace {
constexpr std::uint32_t kControlMagic = 0x0DDC1C7E;
}

std::string encode(const ControlMessage& m) {
  Writer w;
  encode_into(m, w);
  return w.take();
}

void encode_into(const ControlMessage& m, Writer& w) {
  w.u32(kControlMagic);
  w.u8(static_cast<std::uint8_t>(m.type));
  w.u64(m.instance);
  w.f64(m.probability);
  w.i64(m.requirements.min_ram.count());
  w.i64(m.requirements.min_flash.count());
  w.str(m.requirements.device_kind);
  w.i64(m.heartbeat_interval.micros());
  w.u64(m.image.image_id);
  w.str(m.image.name);
  w.i64(m.image.size.count());
  w.u32(m.controller_node);
  w.u32(m.backend_node);
  w.u32(static_cast<std::uint32_t>(m.aggregators.size()));
  for (auto node : m.aggregators) w.u32(node);
  // Trace context travels as transport-header metadata: on the wire but
  // outside canonical_bytes(), so attaching a tracer never re-signs.
  w.u64(m.trace.trace_id);
  w.u64(m.trace.parent_span);
  w.u64(m.signature);
}

ControlMessage decode_control(std::string_view bytes) {
  Reader r(bytes);
  if (r.u32() != kControlMagic) {
    throw WireError("decode_control: bad magic");
  }
  ControlMessage m;
  const std::uint8_t type = r.u8();
  if (type != static_cast<std::uint8_t>(ControlType::kWakeup) &&
      type != static_cast<std::uint8_t>(ControlType::kReset)) {
    throw WireError("decode_control: unknown control type");
  }
  m.type = static_cast<ControlType>(type);
  m.instance = r.u64();
  m.probability = r.f64();
  m.requirements.min_ram = util::Bits(r.i64());
  m.requirements.min_flash = util::Bits(r.i64());
  m.requirements.device_kind = r.str();
  m.heartbeat_interval = sim::SimTime::from_micros(r.i64());
  m.image.image_id = r.u64();
  m.image.name = r.str();
  m.image.size = util::Bits(r.i64());
  m.controller_node = r.u32();
  m.backend_node = r.u32();
  const std::uint32_t aggregator_count = r.u32();
  if (aggregator_count > 1'000'000) {
    throw WireError("decode_control: implausible aggregator count");
  }
  m.aggregators.reserve(aggregator_count);
  for (std::uint32_t i = 0; i < aggregator_count; ++i) {
    m.aggregators.push_back(r.u32());
  }
  m.trace.trace_id = r.u64();
  m.trace.parent_span = r.u64();
  m.signature = r.u64();
  if (!r.exhausted()) {
    throw WireError("decode_control: trailing bytes");
  }
  return m;
}

// --- direct channels ---------------------------------------------------------

std::string encode(const net::Message& message) {
  Writer w;
  encode_into(message, w);
  return w.take();
}

namespace {

// Shared by the standalone frame and the relay batch: a batch is framed as
// a count followed by the same per-frame encoding.
void encode_delta_frame(const DeltaReportMessage& m, Writer& w) {
  w.u32(m.origin());
  w.u32(m.epoch());
  w.u8(static_cast<std::uint8_t>(m.kind()));
  w.u64(m.checksum());
  w.u32(static_cast<std::uint32_t>(m.entries().size()));
  for (const auto& e : m.entries()) {
    w.u64(e.pna_id);
    w.u8(static_cast<std::uint8_t>(e.op));
    w.u8(static_cast<std::uint8_t>(e.state));
    w.u64(e.instance);
    w.u64(e.trace.trace_id);
    w.u64(e.trace.parent_span);
  }
}

}  // namespace

void encode_into(const net::Message& message, Writer& w) {
  w.u8(static_cast<std::uint8_t>(message.tag()));
  switch (message.tag()) {
    case kTagHeartbeat: {
      const auto& m = static_cast<const HeartbeatMessage&>(message);
      w.u64(m.pna_id());
      w.u8(static_cast<std::uint8_t>(m.state()));
      w.u64(m.instance());
      w.u64(m.trace().trace_id);
      w.u64(m.trace().parent_span);
      break;
    }
    case kTagHeartbeatReply: {
      const auto& m = static_cast<const HeartbeatReplyMessage&>(message);
      w.u64(m.instance());
      w.u8(static_cast<std::uint8_t>(m.command()));
      break;
    }
    case kTagTaskRequest: {
      const auto& m = static_cast<const TaskRequestMessage&>(message);
      w.u64(m.instance());
      w.u64(m.pna_id());
      break;
    }
    case kTagTaskAssign: {
      const auto& m = static_cast<const TaskAssignMessage&>(message);
      w.u64(m.instance());
      w.u64(m.task_index());
      w.i64(m.input_size().count());
      w.i64(m.result_size().count());
      w.f64(m.reference_seconds());
      w.u64(m.trace().trace_id);
      w.u64(m.trace().parent_span);
      w.u32(m.replica());
      break;
    }
    case kTagTaskResult: {
      const auto& m = static_cast<const TaskResultMessage&>(message);
      w.u64(m.instance());
      w.u64(m.task_index());
      w.u64(m.pna_id());
      w.i64(m.wire_size().count() - kHeaderBits.count());
      w.u64(m.trace().trace_id);
      w.u64(m.trace().parent_span);
      w.u64(m.digest());
      w.u32(m.replica());
      break;
    }
    case kTagNoTask: {
      const auto& m = static_cast<const NoTaskMessage&>(message);
      w.u64(m.instance());
      break;
    }
    case kTagTaskAbort: {
      const auto& m = static_cast<const TaskAbortMessage&>(message);
      w.u64(m.instance());
      w.u64(m.task_index());
      w.u64(m.pna_id());
      w.u64(m.trace().trace_id);
      w.u64(m.trace().parent_span);
      w.u32(m.replica());
      break;
    }
    case kTagAggregateReport: {
      const auto& m = static_cast<const AggregateReportMessage&>(message);
      w.u32(static_cast<std::uint32_t>(m.entries().size()));
      for (const auto& e : m.entries()) {
        w.u64(e.pna_id);
        w.u8(static_cast<std::uint8_t>(e.state));
        w.u64(e.instance);
        w.u64(e.trace.trace_id);
        w.u64(e.trace.parent_span);
      }
      break;
    }
    case kTagDeltaReport: {
      const auto& m = static_cast<const DeltaReportMessage&>(message);
      encode_delta_frame(m, w);
      break;
    }
    case kTagDeltaBatch: {
      const auto& m = static_cast<const DeltaBatchMessage&>(message);
      w.u32(static_cast<std::uint32_t>(m.frames().size()));
      for (const auto& f : m.frames()) encode_delta_frame(*f, w);
      break;
    }
    default:
      throw std::invalid_argument("wire::encode: tag has no wire format");
  }
}

namespace {
PnaState decode_state(std::uint8_t raw) {
  if (raw > static_cast<std::uint8_t>(PnaState::kBusy)) {
    throw WireError("decode_message: invalid PNA state");
  }
  return static_cast<PnaState>(raw);
}

std::shared_ptr<DeltaReportMessage> decode_delta_frame(Reader& r) {
  const auto origin = r.u32();
  const auto epoch = r.u32();
  const auto kind = r.u8();
  if (kind > static_cast<std::uint8_t>(DeltaReportMessage::Kind::kResync)) {
    throw WireError("decode_message: invalid delta frame kind");
  }
  const auto checksum = r.u64();
  const std::uint32_t count = r.u32();
  // Each encoded entry is at least 34 bytes; a count promising more data
  // than remains is a foreign or corrupted frame, not a big one.
  if (static_cast<std::size_t>(count) * 34 > r.remaining()) {
    throw WireError("decode_message: implausible delta size");
  }
  std::vector<DeltaReportMessage::Entry> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DeltaReportMessage::Entry e;
    e.pna_id = r.u64();
    const auto op = r.u8();
    if (op > static_cast<std::uint8_t>(DeltaReportMessage::Op::kExpire)) {
      throw WireError("decode_message: invalid delta op");
    }
    e.op = static_cast<DeltaReportMessage::Op>(op);
    e.state = decode_state(r.u8());
    e.instance = r.u64();
    e.trace = obs::TraceContext{r.u64(), r.u64()};
    entries.push_back(e);
  }
  return std::make_shared<DeltaReportMessage>(
      origin, epoch, static_cast<DeltaReportMessage::Kind>(kind), checksum,
      std::move(entries));
}
}  // namespace

net::MessagePtr decode_message(std::string_view bytes) {
  Reader r(bytes);
  const std::uint8_t tag = r.u8();
  net::MessagePtr out;
  switch (tag) {
    case kTagHeartbeat: {
      const auto pna = r.u64();
      const auto state = decode_state(r.u8());
      const auto instance = r.u64();
      const obs::TraceContext trace{r.u64(), r.u64()};
      out = std::make_shared<HeartbeatMessage>(pna, state, instance, trace);
      break;
    }
    case kTagHeartbeatReply: {
      const auto instance = r.u64();
      const auto command = r.u8();
      if (command > static_cast<std::uint8_t>(HeartbeatCommand::kReset)) {
        throw WireError("decode_message: invalid heartbeat command");
      }
      out = std::make_shared<HeartbeatReplyMessage>(
          instance, static_cast<HeartbeatCommand>(command));
      break;
    }
    case kTagTaskRequest: {
      const auto instance = r.u64();
      const auto pna = r.u64();
      out = std::make_shared<TaskRequestMessage>(instance, pna);
      break;
    }
    case kTagTaskAssign: {
      const auto instance = r.u64();
      const auto index = r.u64();
      const auto input = util::Bits(r.i64());
      const auto result = util::Bits(r.i64());
      const auto seconds = r.f64();
      const obs::TraceContext trace{r.u64(), r.u64()};
      const auto replica = r.u32();
      out = std::make_shared<TaskAssignMessage>(instance, index, input,
                                                result, seconds, trace,
                                                replica);
      break;
    }
    case kTagTaskResult: {
      const auto instance = r.u64();
      const auto index = r.u64();
      const auto pna = r.u64();
      const auto result = util::Bits(r.i64());
      const obs::TraceContext trace{r.u64(), r.u64()};
      const auto digest = r.u64();
      const auto replica = r.u32();
      out = std::make_shared<TaskResultMessage>(instance, index, pna, result,
                                                trace, digest, replica);
      break;
    }
    case kTagNoTask:
      out = std::make_shared<NoTaskMessage>(r.u64());
      break;
    case kTagTaskAbort: {
      const auto instance = r.u64();
      const auto index = r.u64();
      const auto pna = r.u64();
      const obs::TraceContext trace{r.u64(), r.u64()};
      const auto replica = r.u32();
      out = std::make_shared<TaskAbortMessage>(instance, index, pna, trace,
                                               replica);
      break;
    }
    case kTagAggregateReport: {
      const std::uint32_t count = r.u32();
      if (static_cast<std::size_t>(count) * 33 > r.remaining()) {
        throw WireError("decode_message: implausible report size");
      }
      std::vector<AggregateReportMessage::Entry> entries;
      entries.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        AggregateReportMessage::Entry e;
        e.pna_id = r.u64();
        e.state = decode_state(r.u8());
        e.instance = r.u64();
        e.trace = obs::TraceContext{r.u64(), r.u64()};
        entries.push_back(e);
      }
      out = std::make_shared<AggregateReportMessage>(std::move(entries));
      break;
    }
    case kTagDeltaReport: {
      out = decode_delta_frame(r);
      break;
    }
    case kTagDeltaBatch: {
      const std::uint32_t frames = r.u32();
      // A frame is at least 21 bytes even when empty.
      if (static_cast<std::size_t>(frames) * 21 > r.remaining()) {
        throw WireError("decode_message: implausible batch size");
      }
      std::vector<std::shared_ptr<const DeltaReportMessage>> decoded;
      decoded.reserve(frames);
      for (std::uint32_t i = 0; i < frames; ++i) {
        decoded.push_back(decode_delta_frame(r));
      }
      out = std::make_shared<DeltaBatchMessage>(std::move(decoded));
      break;
    }
    default:
      throw WireError("decode_message: unknown tag");
  }
  if (!r.exhausted()) {
    throw WireError("decode_message: trailing bytes");
  }
  return out;
}

}  // namespace oddci::core::wire

#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/messages.hpp"

/// Binary wire codec for the OddCI protocol.
///
/// The simulation passes messages as in-memory objects; this codec defines
/// the actual byte encoding a deployment would put on the air and on the
/// direct channels — little-endian fixed-width integers, length-prefixed
/// strings, one tag byte for direct messages — with strict, throwing
/// decoders. Round-trip and truncation behaviour are property-tested.
namespace oddci::core::wire {

class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only byte sink.
class Writer {
 public:
  Writer& u8(std::uint8_t v);
  Writer& u32(std::uint32_t v);
  Writer& u64(std::uint64_t v);
  Writer& i64(std::int64_t v);
  Writer& f64(double v);
  Writer& str(std::string_view s);  ///< u32 length prefix + bytes

  [[nodiscard]] const std::string& bytes() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

  /// Discard contents but keep the allocated capacity: a Writer cleared
  /// between encodes re-appends into its old buffer, so steady-state
  /// encoding is allocation-free once the high-water mark is reached.
  void clear() noexcept { out_.clear(); }
  void reserve(std::size_t n) { out_.reserve(n); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return out_.capacity();
  }

 private:
  std::string out_;
};

/// Strict cursor over a byte buffer; every getter throws WireError when the
/// remaining bytes are insufficient.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : data_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const;
  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- control plane ---------------------------------------------------------

/// Serialize a (signed) control message — the bytes of the carousel's
/// configuration file.
[[nodiscard]] std::string encode(const ControlMessage& message);

/// Append the encoding to `w` (callers clear() the Writer between messages
/// to reuse its buffer — the allocation-free hot path).
void encode_into(const ControlMessage& message, Writer& w);

/// Parse a configuration file. Throws WireError on truncation, trailing
/// garbage, or unknown control type. Signature validity is NOT checked
/// here — the PNA verifies it separately against its trusted key.
[[nodiscard]] ControlMessage decode_control(std::string_view bytes);

// --- direct channels ---------------------------------------------------------

/// Serialize any direct-channel protocol message (dispatch on tag()).
/// Throws std::invalid_argument for tags without a wire format (e.g. the
/// simulation-only BlobMessage).
[[nodiscard]] std::string encode(const net::Message& message);

/// Append the encoding to `w` (reusable-buffer variant of encode()).
void encode_into(const net::Message& message, Writer& w);

/// Parse a direct-channel message. Throws WireError on malformed input.
[[nodiscard]] net::MessagePtr decode_message(std::string_view bytes);

}  // namespace oddci::core::wire

#pragma once

#include <memory>
#include <vector>

#include "dtv/receiver.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

/// Receiver churn: set-top boxes are switched on and off at the will of
/// their owners (Section 3.2), which is why the Controller must retransmit
/// wakeup messages to recompose instances. This process drives each
/// receiver through exponential on/off cycles and, while on, samples
/// whether the viewer is actively watching (in-use) or the box idles in
/// standby.
namespace oddci::core {

struct ChurnOptions {
  double mean_on_seconds = 3600.0;
  double mean_off_seconds = 1800.0;
  /// While on, probability that the receiver is in use (vs standby).
  double in_use_probability = 0.7;
  /// Fraction of receivers that start switched on.
  double initial_on_fraction = -1.0;  ///< <0 = steady-state on/(on+off)

  void validate() const;
  [[nodiscard]] double steady_state_on_fraction() const {
    return mean_on_seconds / (mean_on_seconds + mean_off_seconds);
  }
};

/// Diurnal TV-audience model: each receiver follows a personal daily
/// schedule — an evening viewing session whose start clusters around prime
/// time, optional daytime viewing, and a configurable habit of leaving the
/// box in standby (rather than off) outside sessions. This produces the
/// day/night capacity rhythm that motivates overnight computing: at 3 am
/// most powered boxes are idle in standby (fast), at 9 pm they are in use
/// (slow) but numerous.
struct DiurnalOptions {
  double evening_start_hour_mean = 19.5;  ///< prime-time session start
  double evening_start_hour_sigma = 1.5;
  double viewing_hours_median = 2.5;      ///< lognormal session length
  double viewing_hours_sigma = 0.5;
  /// Probability of an (additional) daytime session on a given day.
  double day_session_probability = 0.25;
  double day_start_hour_mean = 13.0;
  double day_start_hour_sigma = 2.0;
  /// After a session (and overnight), the box stays in standby with this
  /// probability; otherwise it is switched off.
  double standby_probability = 0.6;

  void validate() const;
};

class DiurnalAudience {
 public:
  DiurnalAudience(sim::Simulation& simulation,
                  std::vector<dtv::Receiver*> receivers, std::uint64_t seed,
                  DiurnalOptions options);
  ~DiurnalAudience();

  DiurnalAudience(const DiurnalAudience&) = delete;
  DiurnalAudience& operator=(const DiurnalAudience&) = delete;

  /// Sets each receiver's state for the current time of day and schedules
  /// the daily rhythm. `start_hour` is the simulated clock's hour-of-day
  /// at simulation().now().
  void start(double start_hour = 12.0);

  [[nodiscard]] std::size_t in_use_count() const;
  [[nodiscard]] std::size_t standby_count() const;
  [[nodiscard]] std::size_t off_count() const;

 private:
  /// Plan receiver i's next day of sessions starting at absolute sim time
  /// `midnight` (the start of that receiver's day).
  void plan_day(std::size_t index, sim::SimTime midnight);
  void set_mode(std::size_t index, dtv::PowerMode mode);
  [[nodiscard]] dtv::PowerMode idle_mode();

  sim::Simulation& simulation_;
  std::vector<dtv::Receiver*> receivers_;
  util::Random rng_;
  DiurnalOptions options_;
  std::shared_ptr<bool> active_;
  double start_hour_ = 12.0;
};

class ChurnProcess {
 public:
  /// Receivers must outlive the process. Call start() to (a) sample each
  /// receiver's initial power state and (b) begin the on/off cycling.
  ChurnProcess(sim::Simulation& simulation,
               std::vector<dtv::Receiver*> receivers, std::uint64_t seed,
               ChurnOptions options);
  ~ChurnProcess();

  ChurnProcess(const ChurnProcess&) = delete;
  ChurnProcess& operator=(const ChurnProcess&) = delete;

  void start();
  void stop();

  struct Stats {
    std::uint64_t switch_ons = 0;
    std::uint64_t switch_offs = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void schedule_toggle(std::size_t index);
  void toggle(std::size_t index);
  [[nodiscard]] dtv::PowerMode sample_on_mode();

  sim::Simulation& simulation_;
  std::vector<dtv::Receiver*> receivers_;
  util::Random rng_;
  ChurnOptions options_;
  std::shared_ptr<bool> active_;
  Stats stats_;
};

}  // namespace oddci::core

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "fault/byzantine.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "workload/job.hpp"

/// Backend-side Byzantine defense: k-way redundant dispatch with quorum
/// voting over the canonical result digest, seeded spot-check tasks with
/// precomputed answers, and a per-PNA reputation ledger feeding the
/// dispatch policy.
///
/// Determinism contract: the Verifier draws from one dedicated named RNG
/// stream (`verify.dispatch`) and is only ever invoked from the Backend's
/// message handlers, which run on the control shard at any K — so the draw
/// order, and with it the whole verified trajectory, is byte-identical per
/// (seed, K). With `VerifyOptions::enabled` false the Backend never
/// constructs a Verifier: no draws, no metric cells, no behavioral branch,
/// and the naive path stays byte-identical to the pre-verification tree.
namespace oddci::core {

using InstanceId = std::uint64_t;

struct VerifyOptions {
  bool enabled = false;
  /// Replicas per task for unproven (probation) first assignees.
  std::uint32_t redundancy = 2;
  /// Replicas when the first assignee has earned kTrusted standing — the
  /// verified-throughput discount (1 = accept a trusted node's word).
  /// Also applied retroactively at vote time: a round's first vote cast
  /// by a kTrusted node re-targets the quorum down to this size.
  std::uint32_t trusted_redundancy = 1;
  /// Queue all `target` replicas of a task immediately (classic parallel
  /// k-way dispatch) instead of the default sequential quorum, where the
  /// next replica is requested only after the previous vote arrives.
  /// Sequential mode trades task latency for dispatch economy: a task
  /// whose first vote comes from a by-then-trusted node concludes after a
  /// single dispatch instead of burning the full redundancy up front.
  bool eager_replicas = false;
  /// Escalation ceiling: a vote that cannot reach a strict majority by
  /// this many replicas is discarded wholesale and the task re-voted.
  std::uint32_t max_redundancy = 5;
  /// Probability that a task poll is answered with a seeded spot-check
  /// task (precomputed answer, indistinguishable from real work).
  double spot_check_rate = 0.05;
  /// Quarantined agents are offered parole spot-checks at this multiple
  /// of spot_check_rate (capped at 1); their other polls are denied.
  double quarantine_spot_boost = 4.0;
  /// Failed parole probes after which a quarantined agent is cut off from
  /// spot checks entirely (permanent quarantine) — a node that keeps
  /// failing precomputed-answer probes cannot grind the dispatcher into
  /// feeding it probe work forever. Honest nodes pass probes, so a
  /// wrongly quarantined one paroles long before hitting this. 0 = never.
  std::uint32_t parole_failure_limit = 4;
  /// Plausibility floor for result turnaround: a result returned in under
  /// reference_seconds / implausible_speedup simulated seconds is
  /// physically impossible for the device fleet (the free-rider tell —
  /// instant garbage instead of compute) and books an immediate
  /// disagreement observation, without waiting for the quorum. The vote
  /// itself still stands and is adjudicated normally. 0 disables.
  double implausible_speedup = 64.0;
  /// Reputation EWMA: score <- (1-alpha)*score + alpha*outcome.
  double ewma_alpha = 0.25;
  double initial_reputation = 0.5;
  /// Falling below this quarantines the agent into spot-check-only duty.
  double quarantine_below = 0.25;
  /// At or above this (with enough observations) earns kTrusted standing.
  double trusted_above = 0.9;
  /// Observations required before kTrusted is reachable.
  std::uint32_t min_observations = 8;
  /// Consecutive spot-check passes that parole a quarantined agent.
  std::uint32_t parole_checks = 3;
  /// 0 = derive from the system seed via stream_seed("verify.dispatch").
  std::uint64_t seed = 0;

  void validate() const;
};

enum class ReputationState : std::uint8_t {
  kProbation = 0,  ///< default standing: full redundancy applies
  kTrusted,        ///< consistent agreement: reduced redundancy earned
  kQuarantined,    ///< spot-check-only duty until paroled
};

[[nodiscard]] std::string_view to_string(ReputationState state);

/// Per-PNA reputation ledger entry (EWMA of agreement and spot-check
/// outcomes, epoch-stamped at every standing transition).
struct ReputationEntry {
  double score = 0.5;
  std::uint64_t observations = 0;
  std::uint32_t epoch = 0;
  std::uint32_t parole_streak = 0;
  std::uint32_t parole_failures = 0;  ///< failed probes this quarantine
  ReputationState state = ReputationState::kProbation;
};

class Verifier {
 public:
  Verifier(sim::Simulation& simulation, VerifyOptions options,
           std::uint64_t seed);

  /// Collusion-correlation key for replica routing: region of a PNA id
  /// (its aggregator shard). Unset or single-region deployments place
  /// everyone in region 0 and the diversity rule is vacuous.
  using RegionFn = std::function<std::uint32_t(std::uint64_t pna_id)>;
  void set_region_fn(RegionFn fn) { region_fn_ = std::move(fn); }
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }
  /// Registers the verify.* / reputation.* cells; call only when the
  /// subsystem is on (no phantom cells in verify-off snapshots).
  void link_metrics(obs::MetricsRegistry& registry);

  /// Reset per-job vote state (reputation persists across jobs). Unresolved
  /// replicas and votes of a previous job are flushed into `discarded`.
  void begin_job(InstanceId instance, const workload::Job* job);

  // --- dispatch-side decisions (Backend::handle_request) --------------------

  enum class PollGate : std::uint8_t {
    kTask = 0,  ///< serve a real task replica
    kSpot,      ///< serve a seeded spot-check task
    kDeny,      ///< quarantined and no parole slot this poll: NoTask
  };
  /// One RNG draw per poll (handler-ordered, hence deterministic).
  [[nodiscard]] PollGate poll_gate(std::uint64_t pna_id);

  struct SpotTask {
    std::uint64_t index = 0;  ///< >= job task count: the spot index space
    util::Bits input_size;
    util::Bits result_size;
    double reference_seconds = 0.0;
  };
  /// Mint a spot-check task for `pna`: parameters cloned from a seeded
  /// random real task (indistinguishable on the wire), expected answer
  /// derivable as honest_result_digest(instance, index).
  [[nodiscard]] SpotTask make_spot_check(std::uint64_t pna_id);
  [[nodiscard]] bool is_spot_index(std::uint64_t index) const {
    return index >= task_count_;
  }

  /// Task still needs replicas dispatched (not concluded, current round's
  /// live + voted below target)?
  [[nodiscard]] bool needs_replica(std::uint64_t index) const;
  /// May `pna` serve a replica of `index`? Never a PNA that already served
  /// the task; with `region_strict`, never one sharing an aggregator
  /// region with a current participant (the collusion-correlation rule).
  [[nodiscard]] bool may_assign(std::uint64_t index, std::uint64_t pna_id,
                                bool region_strict) const;
  /// The Backend fell back to the region-relaxed pass for a dispatch.
  void note_region_relaxed() { ++region_relaxed_; }

  struct Dispatch {
    std::uint32_t replica = 0;  ///< replica slot (unique per task, ever)
    bool more_replicas = false; ///< caller should requeue the task
  };
  Dispatch on_dispatch(std::uint64_t index, std::uint64_t pna_id);

  // --- result-side decisions (Backend::handle_result) -----------------------

  struct Verdict {
    enum class Outcome : std::uint8_t {
      kPending = 0,  ///< vote recorded, quorum incomplete
      kAccepted,     ///< strict majority: task verified
      kEscalated,    ///< tie at target: target raised, task requeued
      kDiscarded,    ///< tie at max_redundancy: round dropped, re-voted
    };
    Outcome outcome = Outcome::kPending;
    bool requeue = false;  ///< push the task back for another replica
    bool wrong = false;    ///< accepted digest != honest ground truth
  };
  /// A live replica's result arrived (the caller verified the replica was
  /// outstanding). Records the vote, concludes or escalates the quorum,
  /// and applies reputation outcomes on conclusion. `elapsed_seconds` is
  /// the dispatch-to-result turnaround for the plausibility check
  /// (negative = unknown, check skipped).
  Verdict on_result(std::uint64_t index, std::uint64_t pna_id,
                    std::uint64_t digest, obs::TraceContext trace,
                    double elapsed_seconds = -1.0);
  /// Spot-check result: grade against the precomputed answer, update the
  /// ledger (parole bookkeeping for quarantined agents). Unknown or
  /// duplicate spot indices are counted and ignored.
  void on_spot_result(std::uint64_t index, std::uint64_t pna_id,
                      std::uint64_t digest);
  /// A replica slot was freed without a result (timeout / abort / crash of
  /// the assignee): the dispatch is written off as discarded.
  void on_replica_lost(std::uint64_t index);
  /// Backend crash: every live replica and every unresolved vote dies with
  /// the volatile quorum state (the reputation ledger is durable).
  void on_crash();

  // --- reads ----------------------------------------------------------------

  /// Observed dispatches (incl. spot checks) per verified task — the
  /// redundancy overhead factor discounting Phi-driven admission. Falls
  /// back to the configured redundancy until enough tasks concluded.
  [[nodiscard]] double overhead_estimate() const;
  [[nodiscard]] const ReputationEntry* reputation(std::uint64_t pna_id) const;
  [[nodiscard]] const VerifyOptions& options() const { return options_; }

  /// Conservation + detection view. Identity (health-audited):
  ///   dispatched == verified + outvoted + discarded + outstanding
  /// with outstanding = live replicas + votes awaiting a quorum; spot
  /// checks balance separately (sent == passed + failed + outstanding).
  struct Stats {
    std::uint64_t dispatched = 0;       ///< real-task replica dispatches
    std::uint64_t verified = 0;         ///< votes that agreed with a quorum
    std::uint64_t outvoted = 0;         ///< votes a quorum rejected
    std::uint64_t discarded = 0;        ///< lost replicas + dropped rounds
    std::uint64_t outstanding = 0;      ///< live replicas + pending votes
    std::uint64_t tasks_verified = 0;   ///< unique tasks concluded
    std::uint64_t wrong_results = 0;    ///< accepted quorums that were wrong
    std::uint64_t escalations = 0;
    std::uint64_t rounds_discarded = 0;
    std::uint64_t spot_dispatched = 0;
    std::uint64_t spot_passed = 0;
    std::uint64_t spot_failed = 0;
    std::uint64_t spot_flushed = 0;     ///< spot dispatches written off
    std::uint64_t spot_outstanding = 0;
    std::uint64_t polls_denied = 0;
    std::uint64_t region_relaxed = 0;   ///< dispatches past the region rule
    std::uint64_t implausible_returns = 0;  ///< faster-than-physics results
    std::uint64_t quarantines = 0;
    std::uint64_t paroles = 0;
    std::uint64_t trusted_promotions = 0;
    std::uint64_t quarantined_now = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Vote {
    std::uint64_t pna_id = 0;
    std::uint32_t region = 0;
    std::uint64_t digest = 0;
    obs::TraceContext trace;
  };
  struct TaskState {
    std::uint32_t target = 0;           ///< current round's quorum size
    std::uint32_t live = 0;             ///< replicas assigned, no result yet
    std::uint32_t replicas_ever = 0;    ///< replica-number allocator
    std::uint16_t revotes = 0;
    bool concluded = false;
    std::vector<Vote> votes;            ///< this round's arrived digests
    std::vector<std::uint64_t> servers; ///< every PNA ever assigned
  };

  [[nodiscard]] std::uint32_t region_of(std::uint64_t pna_id) const {
    return region_fn_ ? region_fn_(pna_id) : 0;
  }
  ReputationEntry& entry(std::uint64_t pna_id);
  /// Fold one agreement/spot outcome into the ledger and run the standing
  /// transitions (quarantine, parole, trusted promotion/demotion).
  void update_reputation(std::uint64_t pna_id, bool agree, bool spot);
  Verdict conclude(std::uint64_t index, TaskState& task,
                   obs::TraceContext trace);
  void emit(obs::TraceEventKind kind, obs::TraceContext parent,
            std::uint64_t actor, std::uint64_t arg);

  sim::Simulation* simulation_;
  VerifyOptions options_;
  util::Random rng_;
  RegionFn region_fn_;
  obs::FlightRecorder* recorder_ = nullptr;

  InstanceId instance_ = 0;
  const workload::Job* job_ = nullptr;
  std::uint64_t task_count_ = 0;
  std::uint64_t next_spot_index_ = 0;

  std::unordered_map<std::uint64_t, TaskState> tasks_;
  /// Spot index -> assignee (answers are recomputed, not stored).
  std::unordered_map<std::uint64_t, std::uint64_t> spot_outstanding_;
  std::unordered_map<std::uint64_t, ReputationEntry> ledger_;
  std::uint32_t epoch_ = 0;

  // Conservation counters (see Stats). `outstanding` is derived:
  // outstanding_live_ + votes_pending_.
  obs::Counter dispatched_;
  obs::Counter verified_;
  obs::Counter outvoted_;
  obs::Counter discarded_;
  obs::Counter tasks_verified_;
  obs::Counter wrong_results_;
  obs::Counter escalations_;
  obs::Counter rounds_discarded_;
  obs::Counter spot_dispatched_;
  obs::Counter spot_passed_;
  obs::Counter spot_failed_;
  obs::Counter spot_stale_;
  obs::Counter spot_flushed_;
  obs::Counter polls_denied_;
  obs::Counter region_relaxed_;
  obs::Counter implausible_returns_;
  obs::Counter quarantines_;
  obs::Counter paroles_;
  obs::Counter trusted_promotions_;
  std::uint64_t outstanding_live_ = 0;
  std::uint64_t votes_pending_ = 0;
  std::uint64_t quarantined_now_ = 0;
};

}  // namespace oddci::core

#include "core/controller.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "util/logging.hpp"

namespace oddci::core {

namespace {
// One-time (per process) deprecation warnings for the ControllerOptions
// policy aliases; reset_controller_deprecation_warnings() re-arms them for
// tests.
bool warned_monitor_interval = false;
bool warned_stale_factor = false;
bool warned_overshoot_margin = false;

void warn_alias(bool& flag, const char* field) {
  if (flag) return;
  flag = true;
  ODDCI_LOG_WARN("controller")
      << "ControllerOptions::" << field
      << " is deprecated; set SystemConfig::control." << field
      << " (control::PolicyOptions) instead";
}
}  // namespace

void reset_controller_deprecation_warnings() {
  warned_monitor_interval = false;
  warned_stale_factor = false;
  warned_overshoot_margin = false;
}

control::PolicyOptions ControllerOptions::effective_policy() const {
  control::PolicyOptions out = policy;
  if (monitor_interval) {
    warn_alias(warned_monitor_interval, "monitor_interval");
    out.monitor_interval = *monitor_interval;
  }
  if (stale_factor) {
    warn_alias(warned_stale_factor, "stale_factor");
    out.stale_factor = *stale_factor;
  }
  if (overshoot_margin) {
    warn_alias(warned_overshoot_margin, "overshoot_margin");
    out.overshoot_margin = *overshoot_margin;
  }
  return out;
}

Controller::Controller(sim::Simulation& simulation, net::Network& network,
                       broadcast::BroadcastMedium& channel,
                       ContentStore& store, broadcast::SigningKey key,
                       const net::LinkSpec& link, ControllerOptions options)
    : Controller(simulation, network,
                 std::vector<broadcast::BroadcastMedium*>{&channel}, store,
                 key, link, std::move(options)) {}

Controller::Controller(sim::Simulation& simulation, net::Network& network,
                       std::vector<broadcast::BroadcastMedium*> channels,
                       ContentStore& store, broadcast::SigningKey key,
                       const net::LinkSpec& link, ControllerOptions options)
    : simulation_(simulation),
      network_(network),
      channels_(std::move(channels)),
      store_(store),
      key_(key),
      options_(std::move(options)) {
  if (channels_.empty()) {
    throw std::invalid_argument("Controller: need at least one channel");
  }
  for (auto* c : channels_) {
    if (c == nullptr) {
      throw std::invalid_argument("Controller: null channel");
    }
  }
  options_.policy = options_.effective_policy();
  // make_engine validates (throws std::invalid_argument on bad knobs,
  // whether set directly or through a deprecated alias).
  engine_ = control::make_engine(options_.policy);
  default_heartbeat_ = options_.default_heartbeat;
  node_id_ = network_.register_endpoint(this, link);
}

Controller::~Controller() {
  if (monitor_running_) monitor_.cancel();
}

void Controller::deploy_pna() {
  if (deployed_) return;
  deployed_ = true;

  // AIT: the PNA is a trigger application (AUTOSTART).
  broadcast::AitEntry entry;
  entry.application_id = options_.pna_application_id;
  entry.control_code = broadcast::AppControlCode::kAutostart;
  entry.application_name = options_.pna_application_name;
  entry.base_file = options_.pna_file;
  for (auto* channel : channels_) {
    channel->ait().upsert(entry);
    channel->put_file(options_.pna_file, options_.pna_xlet_size,
                      /*content_id=*/0);
  }

  // A signed no-op control message so freshly launched agents learn their
  // Controller's direct-channel address and begin heartbeating.
  ControlMessage hello;
  hello.type = ControlType::kReset;
  hello.instance = kNoInstance;  // matches no instance: a pure "hello"
  hello.probability = 0.0;
  hello.controller_node = node_id_;
  hello.backend_node = net::kInvalidNode;
  hello.heartbeat_interval = default_heartbeat_;
  broadcast_control(hello);

  aggregator_last_seen_.assign(aggregator_nodes_.size(), simulation_.now());

  monitor_ = sim::PeriodicTask(simulation_,
                               simulation_.now() + options_.policy.monitor_interval,
                               options_.policy.monitor_interval,
                               [this] { monitor_tick(); });
  monitor_running_ = true;
}

void Controller::set_aggregators(std::vector<net::NodeId> aggregators) {
  if (deployed_) {
    throw std::logic_error(
        "Controller: set_aggregators must precede deploy_pna");
  }
  aggregators_ = aggregators;
  aggregator_nodes_ = std::move(aggregators);
  aggregator_last_seen_.assign(aggregator_nodes_.size(), sim::SimTime::zero());
  aggregator_reported_.assign(aggregator_nodes_.size(), false);
}

obs::TraceContext Controller::broadcast_control(const ControlMessage& message) {
  ControlMessage signed_message = message;
  signed_message.aggregators = aggregators_;
  if (recorder_ != nullptr) {
    signed_message.trace = recorder_->emit(
        simulation_.now(), obs::TraceEventKind::kControlFormat,
        obs::TraceComponent::kController, message.trace, message.instance,
        static_cast<std::uint64_t>(message.type));
  }
  signed_message.sign_with(key_);
  const std::uint64_t content = store_.put_control(signed_message);
  // The configuration file is small; its size models a compact encoding.
  for (auto* channel : channels_) {
    channel->put_file(options_.config_file, util::Bits::from_bytes(512),
                      content);
  }
  stage_and_commit();
  // The previous configuration payload left the carousel; in-flight reads
  // of it were invalidated by the module-version bump anyway.
  if (last_config_content_ != 0) {
    store_.remove(last_config_content_);
  }
  last_config_content_ = content;
  if (message.type == ControlType::kWakeup) {
    ++wakeup_broadcasts_;
  } else {
    ++reset_broadcasts_;
  }
  return signed_message.trace;
}

void Controller::stage_and_commit() {
  for (auto* channel : channels_) {
    channel->commit();
  }
}

InstanceId Controller::create_instance(const InstanceSpec& spec,
                                       net::NodeId backend_node,
                                       obs::TraceContext parent) {
  if (!deployed_) {
    throw std::logic_error("Controller: deploy_pna() before create_instance");
  }
  if (spec.target_size == 0) {
    throw std::invalid_argument("Controller: target size must be > 0");
  }
  if (spec.image_size.count() <= 0) {
    throw std::invalid_argument("Controller: image size must be > 0");
  }

  const InstanceId id = next_instance_++;
  Instance inst;
  inst.status.id = id;
  inst.status.name = spec.name;
  inst.status.active = true;
  inst.status.target_size = spec.target_size;
  inst.status.created_at = simulation_.now();
  inst.spec = spec;
  inst.backend_node = backend_node;
  inst.image.image_id = next_image_++;
  inst.image.name = "image-" + std::to_string(inst.image.image_id);
  inst.image.size = spec.image_size;
  default_heartbeat_ = spec.heartbeat_interval;

  // Stage the user image on the carousel.
  for (auto* channel : channels_) {
    channel->put_file(inst.image.name, inst.image.size,
                      inst.image.image_id);
  }

  ControlMessage wakeup;
  wakeup.type = ControlType::kWakeup;
  wakeup.instance = id;
  wakeup.requirements = spec.requirements;
  wakeup.heartbeat_interval = spec.heartbeat_interval;
  wakeup.image = inst.image;
  wakeup.controller_node = node_id_;
  wakeup.backend_node = backend_node;
  if (spec.initial_probability) {
    const double given = *spec.initial_probability;
    if (given <= 0.0 || given > 1.0) {
      throw std::invalid_argument(
          "Controller: initial probability must be in (0, 1]");
    }
    wakeup.probability = given;
  } else {
    wakeup.probability = engine_->initial_probability(
        observe(id, inst, recruitment_idle_pool()));
  }
  wakeup.trace = parent;

  instances_.emplace(id, std::move(inst));
  if (tracer_ != nullptr) {
    tracer_->begin("instance.form", id, simulation_.now().seconds());
  }
  const obs::TraceContext formatted = broadcast_control(wakeup);
  Instance& live = instances_.at(id);
  live.trace = formatted;
  live.status.wakeups_broadcast++;
  live.last_wakeup_at = simulation_.now();
  ODDCI_LOG_TRACE("controller")
      << "instance " << id << " wakeup broadcast, target "
      << spec.target_size << ", p=" << wakeup.probability;
  return id;
}

control::ControlObservation Controller::observe(InstanceId id,
                                                const Instance& inst,
                                                std::size_t idle_pool) const {
  control::ControlObservation observation;
  observation.now = simulation_.now();
  observation.instance = id;
  observation.target = inst.status.target_size;
  observation.members = inst.members.size();
  observation.joining = inst.joining.size();
  observation.idle_pool = idle_pool;
  observation.known_pnas = pnas_known_;
  observation.pruned_this_tick = inst.pruned_last_tick;
  observation.recruiting = inst.recruiting;
  observation.heartbeat_interval = inst.spec.heartbeat_interval;
  observation.since_last_wakeup = simulation_.now() - inst.last_wakeup_at;
  return observation;
}

void Controller::destroy_instance(InstanceId id) {
  auto it = instances_.find(id);
  if (it == instances_.end()) {
    throw std::invalid_argument("Controller: unknown instance");
  }
  Instance& inst = it->second;
  if (!inst.status.active) return;
  inst.status.active = false;
  inst.status.target_size = 0;
  inst.pending_trims = 0;
  engine_->forget(id);
  if (tracer_ != nullptr) {
    tracer_->discard("instance.form", id);  // destroyed before forming
  }

  for (auto* channel : channels_) {
    channel->remove_file(inst.image.name);
  }

  ControlMessage reset;
  reset.type = ControlType::kReset;
  reset.instance = id;
  reset.controller_node = node_id_;
  reset.heartbeat_interval = inst.spec.heartbeat_interval;
  reset.trace = inst.trace;
  broadcast_control(reset);
  ODDCI_LOG_TRACE("controller") << "instance " << id << " reset broadcast";
}

void Controller::set_recruiting(InstanceId id, bool recruiting) {
  auto it = instances_.find(id);
  if (it == instances_.end()) {
    throw std::invalid_argument("Controller: unknown instance");
  }
  if (it->second.recruiting == recruiting) return;
  it->second.recruiting = recruiting;
  if (!recruiting) {
    // Supersede the on-air wakeup so returning receivers stop joining.
    ControlMessage hello;
    hello.type = ControlType::kReset;
    hello.instance = kNoInstance;
    hello.probability = 0.0;
    hello.controller_node = node_id_;
    hello.heartbeat_interval = it->second.spec.heartbeat_interval;
    broadcast_control(hello);
  }
  // Re-enabling recruiting needs no immediate action: the maintenance loop
  // rebroadcasts a wakeup on its next tick if there is a deficit.
}

void Controller::resize_instance(InstanceId id, std::size_t new_target) {
  auto it = instances_.find(id);
  if (it == instances_.end() || !it->second.status.active) {
    throw std::invalid_argument("Controller: unknown or inactive instance");
  }
  if (new_target == 0) {
    throw std::invalid_argument("Controller: resize target must be > 0 (use destroy_instance)");
  }
  it->second.status.target_size = new_target;
  it->second.spec.target_size = new_target;
  // The maintenance loop performs the growth/trim on its next tick.
}

const InstanceStatus* Controller::status(InstanceId id) const {
  auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : &it->second.status;
}

std::vector<InstanceStatus> Controller::all_statuses() const {
  std::vector<InstanceStatus> out;
  out.reserve(instances_.size());
  for (const auto& [id, inst] : instances_) out.push_back(inst.status);
  std::sort(out.begin(), out.end(),
            [](const InstanceStatus& a, const InstanceStatus& b) {
              return a.id < b.id;
            });
  return out;
}

obs::TraceContext Controller::trace_context(InstanceId id) const {
  const auto it = instances_.find(id);
  return it == instances_.end() ? obs::TraceContext{} : it->second.trace;
}

std::pair<Controller::PnaRecord&, bool> Controller::ensure_pna(
    std::uint64_t id) {
  if (id < kMaxDensePnas) {
    if (id >= pna_dense_.size()) pna_dense_.resize(id + 1);
    PnaRecord& rec = pna_dense_[id];
    const bool fresh = !rec.known;
    if (fresh) {
      rec.known = true;
      ++pnas_known_;
    }
    return {rec, fresh};
  }
  const auto [it, fresh] = pna_overflow_.try_emplace(id);
  if (fresh) {
    it->second.known = true;
    ++pnas_known_;
  }
  return {it->second, fresh};
}

const Controller::PnaRecord* Controller::find_pna(std::uint64_t id) const {
  if (id < kMaxDensePnas) {
    if (id >= pna_dense_.size() || !pna_dense_[id].known) return nullptr;
    return &pna_dense_[id];
  }
  const auto it = pna_overflow_.find(id);
  return it == pna_overflow_.end() ? nullptr : &it->second;
}

Controller::PnaRecord* Controller::find_pna_mutable(std::uint64_t id) {
  if (id < kMaxDensePnas) {
    if (id >= pna_dense_.size() || !pna_dense_[id].known) return nullptr;
    return &pna_dense_[id];
  }
  const auto it = pna_overflow_.find(id);
  return it == pna_overflow_.end() ? nullptr : &it->second;
}

std::size_t Controller::idle_pool_estimate() const {
  // Delta mode maintains freshness incrementally: aggregator expiries and
  // the direct prune remove stale records outright, so the latest-report
  // mirror IS the windowed estimate — without the O(population) scan.
  if (options_.heartbeat_mode == HeartbeatMode::kDelta) return idle_known_;
  const sim::SimTime horizon =
      sim::SimTime::from_seconds(default_heartbeat_.seconds() *
                                 options_.policy.stale_factor);
  std::size_t count = 0;
  for_each_pna([&](const PnaRecord& rec) {
    if (rec.state == PnaState::kIdle &&
        simulation_.now() - rec.last_seen <= horizon) {
      ++count;
    }
  });
  return count;
}

std::size_t Controller::known_pna_count() const {
  if (options_.heartbeat_mode == HeartbeatMode::kDelta) return pnas_known_;
  const sim::SimTime horizon =
      sim::SimTime::from_seconds(default_heartbeat_.seconds() *
                                 options_.policy.stale_factor);
  std::size_t count = 0;
  for_each_pna([&](const PnaRecord& rec) {
    if (simulation_.now() - rec.last_seen <= horizon) ++count;
  });
  return count;
}

std::size_t Controller::recruitment_idle_pool() const {
  return options_.heartbeat_mode == HeartbeatMode::kDelta
             ? idle_known_
             : idle_pool_estimate();
}

void Controller::set_size_callback(SizeCallback callback) {
  size_callback_ = std::move(callback);
}

void Controller::link_metrics(obs::MetricsRegistry& registry) const {
  registry.link_counter("controller.heartbeats_received",
                        heartbeats_received_);
  registry.link_counter("controller.aggregate_reports_received",
                        aggregate_reports_received_);
  registry.link_counter("controller.wakeup_broadcasts", wakeup_broadcasts_);
  registry.link_counter("controller.reset_broadcasts", reset_broadcasts_);
  registry.link_counter("controller.unicast_resets", unicast_resets_);
  registry.link_counter("controller.recompositions", recompositions_);
  registry.link_counter("controller.members_pruned", members_pruned_);
  if (options_.aggregator_timeout > sim::SimTime::zero()) {
    registry.link_counter("recovery.aggregator_failovers",
                          aggregator_failovers_);
    registry.link_counter("recovery.aggregator_restores",
                          aggregator_restores_);
  }
  // Both modes carry the ingest-bytes cell: it is the naive-vs-delta
  // payload comparison the fan-out bench reads.
  registry.link_counter("controller.report_bytes_ingested",
                        report_bytes_ingested_);
  if (options_.heartbeat_mode == HeartbeatMode::kDelta) {
    registry.link_counter("controller.delta_frames_received",
                          delta_frames_received_);
    registry.link_counter("controller.delta_entries_applied",
                          delta_entries_applied_);
    registry.link_counter("controller.delta_expires_applied",
                          delta_expires_applied_);
    registry.link_counter("controller.delta_resyncs", delta_resyncs_);
    registry.link_counter("controller.delta_gaps", delta_gaps_);
    registry.link_counter("controller.delta_frames_skipped",
                          delta_frames_skipped_);
    registry.link_counter("controller.delta_resync_requests",
                          delta_resync_requests_);
    registry.link_counter("controller.delta_checksum_failures",
                          delta_checksum_failures_);
  }
  registry.link_histogram("controller.join_latency_seconds", join_latency_);
  // O(1) incremental mirrors — safe to evaluate every snapshot/sample.
  registry.link_probe("controller.pnas_known", [this] {
    return static_cast<double>(pnas_known_);
  });
  registry.link_probe("controller.idle_known", [this] {
    return static_cast<double>(idle_known_);
  });
  registry.link_probe("controller.total_members", [this] {
    return static_cast<double>(members_total_);
  });
  registry.link_probe("controller.instances", [this] {
    return static_cast<double>(instances_.size());
  });
}

void Controller::note_member_change(Instance& inst) {
  inst.status.current_size = inst.members.size();
  if (!inst.status.reached_target_at &&
      inst.status.current_size >= inst.status.target_size &&
      inst.status.active) {
    inst.status.reached_target_at = simulation_.now();
    if (tracer_ != nullptr) {
      tracer_->end("instance.form", inst.status.id,
                   simulation_.now().seconds());
    }
    if (recorder_ != nullptr) {
      recorder_->emit(simulation_.now(), obs::TraceEventKind::kInstanceReady,
                      obs::TraceComponent::kController, inst.trace,
                      inst.status.id, inst.status.target_size);
    }
  }
  if (size_callback_) {
    size_callback_(inst.status.id, inst.status.current_size,
                   inst.status.target_size);
  }
}

void Controller::on_message(net::NodeId from, const net::MessagePtr& message) {
  switch (message->tag()) {
    case kTagHeartbeat: {
      const auto& hb = static_cast<const HeartbeatMessage&>(*message);
      ++heartbeats_received_;
      PnaRecord& rec =
          handle_status(hb.pna_id(), hb.state(), hb.instance(), from,
                        hb.trace());
      if (options_.heartbeat_mode == HeartbeatMode::kDelta) {
        // Heard directly (failover fallback): this record is now ours to
        // staleness-check until an aggregator claims it back.
        rec.origin = kDirectOrigin;
        if (!rec.direct_listed) {
          rec.direct_listed = true;
          direct_ids_.push_back(hb.pna_id());
        }
      }
      break;
    }
    case kTagAggregateReport: {
      const auto& report =
          static_cast<const AggregateReportMessage&>(*message);
      ++aggregate_reports_received_;
      report_bytes_ingested_ +=
          static_cast<std::uint64_t>(report.wire_size().count() / 8);
      for (const auto& entry : report.entries()) {
        // The PNA id is its direct-channel address, so unicast replies can
        // bypass the aggregation tier.
        handle_status(entry.pna_id, entry.state, entry.instance,
                      static_cast<net::NodeId>(entry.pna_id), entry.trace);
      }
      if (options_.aggregator_timeout > sim::SimTime::zero()) {
        note_aggregator_alive(from);
      }
      break;
    }
    case kTagDeltaReport: {
      const auto& frame = static_cast<const DeltaReportMessage&>(*message);
      report_bytes_ingested_ +=
          static_cast<std::uint64_t>(frame.wire_size().count() / 8);
      apply_delta_frame(frame);
      break;
    }
    case kTagDeltaBatch: {
      const auto& batch = static_cast<const DeltaBatchMessage&>(*message);
      report_bytes_ingested_ +=
          static_cast<std::uint64_t>(batch.wire_size().count() / 8);
      for (const auto& frame : batch.frames()) apply_delta_frame(*frame);
      break;
    }
    default:
      break;
  }
}

Controller::PnaRecord& Controller::handle_status(std::uint64_t pna_id,
                                                 PnaState state,
                                                 InstanceId instance,
                                                 net::NodeId reply_to,
                                                 obs::TraceContext trace) {
  const net::NodeId from = reply_to;
  const auto [rec, first_report] = ensure_pna(pna_id);
  if (rec.suppress_busy) {
    // A trim reset is in flight to this agent (delta mode). One stale busy
    // report may still arrive from its aggregator, emitted before the
    // agent could obey; swallowing it keeps the just-trimmed member out.
    // If the reset was lost, the agent's *next* report re-adds it — the
    // flag is one-shot. (Never set in naive mode.)
    rec.suppress_busy = false;
    if (state == PnaState::kBusy) {
      rec.last_seen = simulation_.now();
      return rec;
    }
  }
  const PnaState old_state = rec.state;
  const InstanceId old_instance = rec.instance;
  // idle_known_ mirrors "latest report was idle" without rescanning the
  // PNA directory.
  if (first_report) {
    if (state == PnaState::kIdle) ++idle_known_;
  } else if (old_state == PnaState::kIdle && state != PnaState::kIdle) {
    --idle_known_;
  } else if (old_state != PnaState::kIdle && state == PnaState::kIdle) {
    ++idle_known_;
  }
  rec.state = state;
  rec.instance = instance;
  rec.last_seen = simulation_.now();

  // Membership bookkeeping: drop from the previous instance's sets if the
  // association changed, then (re)index under the reported state.
  if (old_instance != kNoInstance &&
      (old_instance != instance || old_state != state)) {
    auto it = instances_.find(old_instance);
    if (it != instances_.end()) {
      it->second.joining.erase(pna_id);
      if (it->second.members.erase(pna_id)) {
        --members_total_;
        note_member_change(it->second);
      }
    }
  }
  if (instance != kNoInstance) {
    auto it = instances_.find(instance);
    if (it != instances_.end()) {
      Instance& inst = it->second;
      if (state == PnaState::kBusy) {
        inst.joining.erase(pna_id);
        if (inst.members.insert(pna_id).second) {
          ++members_total_;
          join_latency_.record(
              (simulation_.now() - inst.last_wakeup_at).seconds());
          if (recorder_ != nullptr) {
            recorder_->emit(simulation_.now(),
                            obs::TraceEventKind::kMemberJoined,
                            obs::TraceComponent::kController, trace, pna_id,
                            instance);
          }
          note_member_change(inst);
        }
      } else if (state == PnaState::kJoining) {
        inst.joining.insert(pna_id);
      }
    }
  }

  // Trimming: answer heartbeats of oversized instances with unicast resets.
  if (state == PnaState::kBusy && instance != kNoInstance) {
    auto it = instances_.find(instance);
    if (it != instances_.end()) {
      Instance& inst = it->second;
      const bool over_target =
          inst.status.active && inst.members.size() > inst.status.target_size;
      if ((over_target && inst.pending_trims > 0) || !inst.status.active) {
        if (inst.pending_trims > 0) --inst.pending_trims;
        ++inst.status.unicast_resets;
        ++unicast_resets_;
        if (recorder_ != nullptr) {
          recorder_->emit(simulation_.now(), obs::TraceEventKind::kTrimReset,
                          obs::TraceComponent::kController, trace, pna_id,
                          instance);
        }
        network_.send(node_id_, from,
                      std::make_shared<HeartbeatReplyMessage>(
                          instance, HeartbeatCommand::kReset));
        if (inst.members.erase(pna_id)) {
          --members_total_;
          note_member_change(inst);
        }
        rec.instance = kNoInstance;
        if (rec.state != PnaState::kIdle) ++idle_known_;
        rec.state = PnaState::kIdle;
      }
    }
  }
  return rec;
}

void Controller::note_aggregator_alive(net::NodeId from) {
  for (std::size_t i = 0; i < aggregator_nodes_.size(); ++i) {
    if (aggregator_nodes_[i] != from) continue;
    aggregator_last_seen_[i] = simulation_.now();
    aggregator_reported_[i] = true;
    if (aggregators_[i] == net::kInvalidNode) {
      aggregators_[i] = from;
      ++aggregator_restores_;
      if (recorder_ != nullptr) {
        recorder_->emit(simulation_.now(),
                        obs::TraceEventKind::kRecoveryAggregatorRestore,
                        obs::TraceComponent::kController, {}, i, from);
      }
      rebroadcast_routing();
    }
    return;
  }
}

void Controller::note_origin_alive(std::size_t origin) {
  if (origin >= aggregator_nodes_.size()) return;
  aggregator_last_seen_[origin] = simulation_.now();
  aggregator_reported_[origin] = true;
  if (aggregators_[origin] == net::kInvalidNode) {
    aggregators_[origin] = aggregator_nodes_[origin];
    ++aggregator_restores_;
    if (recorder_ != nullptr) {
      recorder_->emit(simulation_.now(),
                      obs::TraceEventKind::kRecoveryAggregatorRestore,
                      obs::TraceComponent::kController, {}, origin,
                      aggregator_nodes_[origin]);
    }
    rebroadcast_routing();
  }
}

void Controller::apply_delta_frame(const DeltaReportMessage& frame) {
  ++delta_frames_received_;
  const std::uint32_t o = frame.origin();
  // An origin index far beyond any plausible tier size would balloon
  // origins_; such a frame is garbage, not protocol state.
  if (o > 1'000'000u) return;
  if (o >= origins_.size()) origins_.resize(o + 1);
  OriginState& os = origins_[o];
  if (options_.aggregator_timeout > sim::SimTime::zero()) {
    note_origin_alive(o);
  }

  if (frame.kind() == DeltaReportMessage::Kind::kResync) {
    ++delta_resyncs_;
    os.resync_requested = false;
    // Verify the frame is internally consistent before trusting it as the
    // new truth: the checksum covers the aggregator's ledger after this
    // frame, which for a resync is exactly the frame's kUpdate entries.
    std::uint64_t checksum = 0;
    for (const auto& e : frame.entries()) {
      if (e.op == DeltaReportMessage::Op::kUpdate) {
        checksum ^= delta_member_mix(e.pna_id, e.state, e.instance);
      }
    }
    if (checksum != frame.checksum()) ++delta_checksum_failures_;
    // Mark-and-sweep slice replacement: everything the frame lists is
    // stamped, everything this origin claimed before but no longer lists
    // is forgotten.
    ++resync_mark_counter_;
    std::vector<std::uint64_t> old_ids = std::move(os.ids);
    os.ids.clear();
    for (const auto& e : frame.entries()) apply_delta_entry(o, e, true);
    for (std::uint64_t id : old_ids) {
      PnaRecord* rec = find_pna_mutable(id);
      if (rec != nullptr && rec->origin == o &&
          rec->resync_mark != resync_mark_counter_) {
        remove_record(id);
        ++delta_expires_applied_;
      }
    }
    os.expected_epoch = frame.epoch() + 1;
    os.synced = true;
    return;
  }

  // Delta frame: applying it out of order (or before any resync) would
  // silently diverge the membership view — skip it and ask the origin for
  // a full frame instead.
  if (!os.synced) {
    ++delta_frames_skipped_;
    request_resync(o, os);
    return;
  }
  if (frame.epoch() != os.expected_epoch) {
    os.synced = false;
    ++delta_gaps_;
    ++delta_frames_skipped_;
    request_resync(o, os);
    return;
  }
  for (const auto& e : frame.entries()) apply_delta_entry(o, e, false);
  os.expected_epoch = frame.epoch() + 1;
}

void Controller::apply_delta_entry(std::uint32_t origin,
                                   const DeltaReportMessage::Entry& entry,
                                   bool in_resync) {
  if (entry.op == DeltaReportMessage::Op::kExpire) {
    PnaRecord* rec = find_pna_mutable(entry.pna_id);
    // Only the owning origin may expire a record: a stale expiry from a
    // previous owner must not kill a member that re-homed elsewhere.
    if (rec != nullptr && rec->origin == origin) {
      remove_record(entry.pna_id);
      ++delta_expires_applied_;
    }
    return;
  }
  // The PNA id is its direct-channel address, so unicast replies bypass
  // the aggregation tier (same convention as the naive report).
  PnaRecord& rec =
      handle_status(entry.pna_id, entry.state, entry.instance,
                    static_cast<net::NodeId>(entry.pna_id), entry.trace);
  ++delta_entries_applied_;
  OriginState& os = origins_[origin];
  if (in_resync) {
    os.ids.push_back(entry.pna_id);
    rec.resync_mark = resync_mark_counter_;
    if (rec.origin != origin) {
      rec.origin = origin;
      rec.direct_listed = false;
    }
  } else if (rec.origin != origin) {
    rec.origin = origin;
    rec.direct_listed = false;
    os.ids.push_back(entry.pna_id);
  }
}

void Controller::remove_record(std::uint64_t pna_id) {
  PnaRecord* rec = find_pna_mutable(pna_id);
  if (rec == nullptr) return;
  if (rec->instance != kNoInstance) {
    auto it = instances_.find(rec->instance);
    if (it != instances_.end()) {
      Instance& inst = it->second;
      inst.joining.erase(pna_id);
      if (inst.members.erase(pna_id)) {
        --members_total_;
        ++members_pruned_;
        ++inst.pruned_since_tick;
        if (recorder_ != nullptr) {
          recorder_->emit(simulation_.now(),
                          obs::TraceEventKind::kMemberPruned,
                          obs::TraceComponent::kController, inst.trace,
                          pna_id, rec->instance);
        }
        note_member_change(inst);
      }
    }
  }
  if (rec->state == PnaState::kIdle) --idle_known_;
  --pnas_known_;
  if (pna_id < kMaxDensePnas) {
    *rec = PnaRecord{};
  } else {
    pna_overflow_.erase(pna_id);
  }
}

void Controller::request_resync(std::uint32_t origin, OriginState& os) {
  if (os.resync_requested) return;
  if (origin >= aggregator_nodes_.size()) return;
  const net::NodeId target = aggregator_nodes_[origin];
  if (target == net::kInvalidNode) return;
  os.resync_requested = true;
  ++delta_resync_requests_;
  // An empty kResync frame sent *downstream* is the resync request: the
  // aggregator answers by making its next flush a full frame, bounding
  // recovery to about one window instead of the resync_every cadence.
  network_.send(node_id_, target,
                std::make_shared<DeltaReportMessage>(
                    origin, 0, DeltaReportMessage::Kind::kResync, 0,
                    std::vector<DeltaReportMessage::Entry>{}));
}

void Controller::prune_direct() {
  const sim::SimTime horizon =
      sim::SimTime::from_seconds(default_heartbeat_.seconds() *
                                 options_.policy.stale_factor);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < direct_ids_.size(); ++i) {
    const std::uint64_t id = direct_ids_[i];
    PnaRecord* rec = find_pna_mutable(id);
    if (rec == nullptr || rec->origin != kDirectOrigin ||
        !rec->direct_listed) {
      continue;  // re-homed to an aggregator or already gone: drop it
    }
    if (simulation_.now() - rec->last_seen > horizon) {
      rec->direct_listed = false;
      remove_record(id);
      continue;
    }
    direct_ids_[kept++] = id;
  }
  direct_ids_.resize(kept);
}

void Controller::trim_direct(Instance& inst, std::size_t count) {
  if (count == 0) return;
  // The Controller only hears *changes* in delta mode, so steady-state
  // members never re-report and the naive trim-on-heartbeat would starve;
  // pick members now and reset them by unicast immediately.
  std::vector<std::uint64_t> victims;
  victims.reserve(count);
  for (std::uint64_t id : inst.members) {
    if (victims.size() >= count) break;
    victims.push_back(id);
  }
  for (std::uint64_t id : victims) {
    ++inst.status.unicast_resets;
    ++unicast_resets_;
    if (recorder_ != nullptr) {
      recorder_->emit(simulation_.now(), obs::TraceEventKind::kTrimReset,
                      obs::TraceComponent::kController, inst.trace, id,
                      inst.status.id);
    }
    network_.send(node_id_, static_cast<net::NodeId>(id),
                  std::make_shared<HeartbeatReplyMessage>(
                      inst.status.id, HeartbeatCommand::kReset));
    inst.members.erase(id);
    --members_total_;
    note_member_change(inst);
    PnaRecord* rec = find_pna_mutable(id);
    if (rec != nullptr) {
      rec->instance = kNoInstance;
      if (rec->state != PnaState::kIdle) ++idle_known_;
      rec->state = PnaState::kIdle;
      rec->suppress_busy = true;
    }
  }
}

void Controller::rebroadcast_routing() {
  ControlMessage hello;
  hello.type = ControlType::kReset;
  hello.instance = kNoInstance;  // matches no instance: routing update only
  hello.probability = 0.0;
  hello.controller_node = node_id_;
  hello.backend_node = net::kInvalidNode;
  hello.heartbeat_interval = default_heartbeat_;
  broadcast_control(hello);
}

void Controller::crash() {
  if (crashed_) return;
  crashed_ = true;
  network_.unregister_endpoint(node_id_);
  if (monitor_running_) {
    monitor_.cancel();
    monitor_running_ = false;
  }
  // In-flight consolidation state dies with the process: the PNA directory
  // and every instance's membership view. The stable-storage side survives
  // (instance specs, staged carousel content, key, aggregator config).
  pna_dense_.clear();
  pna_overflow_.clear();
  pnas_known_ = 0;
  idle_known_ = 0;
  members_total_ = 0;
  origins_.clear();
  direct_ids_.clear();
  for (auto& [id, inst] : instances_) {
    inst.members.clear();
    inst.joining.clear();
    inst.pending_trims = 0;
    inst.pruned_since_tick = 0;
    note_member_change(inst);
  }
}

void Controller::restart() {
  if (!crashed_) return;
  crashed_ = false;
  network_.reattach_endpoint(node_id_, this);
  // Benefit of the doubt on liveness clocks: everyone gets a full timeout
  // window to be heard from again before being pruned or failed over.
  for (sim::SimTime& seen : aggregator_last_seen_) seen = simulation_.now();
  if (deployed_) {
    monitor_ = sim::PeriodicTask(
        simulation_, simulation_.now() + options_.policy.monitor_interval,
        options_.policy.monitor_interval, [this] { monitor_tick(); });
    monitor_running_ = true;
  }
  // Membership now rebuilds purely from resumed heartbeats; until idle
  // reports repopulate the directory, the monitor's empty-pool gate keeps
  // it from broadcasting spurious wakeups.
}

bool Controller::corrupt_on_air_control() {
  if (crashed_ || corrupted_content_ != 0 || last_config_content_ == 0) {
    return false;
  }
  const std::optional<ControlMessage> current =
      store_.get_control(last_config_content_);
  if (!current) return false;
  // Flip a signed field after signing: every receiver's verification now
  // fails, and because the VerifyCache keys on the canonical bytes' digest,
  // the rejection is memoized under the *tampered* digest — the legitimate
  // generation's entry is untouched.
  ControlMessage tampered = *current;
  tampered.probability = tampered.probability * 0.5 + 0.25;
  corrupted_content_ = store_.put_control(tampered);
  for (auto* channel : channels_) {
    channel->put_file(options_.config_file, util::Bits::from_bytes(512),
                      corrupted_content_);
  }
  stage_and_commit();
  return true;
}

void Controller::restore_on_air_control() {
  if (corrupted_content_ == 0) return;
  if (last_config_content_ != 0) {
    for (auto* channel : channels_) {
      channel->put_file(options_.config_file, util::Bits::from_bytes(512),
                        last_config_content_);
    }
    stage_and_commit();
  }
  store_.remove(corrupted_content_);
  corrupted_content_ = 0;
}

sim::SimTime Controller::staleness_horizon(const Instance& inst) const {
  return sim::SimTime::from_seconds(inst.spec.heartbeat_interval.seconds() *
                                    options_.policy.stale_factor);
}

void Controller::monitor_tick() {
  const auto wall0 = std::chrono::steady_clock::now();
  monitor_tick_impl();
  monitor_wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
}

void Controller::monitor_tick_impl() {
  // Aggregator failover: void silent aggregators from the routing so their
  // PNAs re-home to the Controller. Sticky until a report resumes
  // (note_aggregator_alive restores the slot).
  if (options_.aggregator_timeout > sim::SimTime::zero() &&
      !aggregator_nodes_.empty()) {
    bool changed = false;
    for (std::size_t i = 0; i < aggregator_nodes_.size(); ++i) {
      if (aggregators_[i] == net::kInvalidNode || !aggregator_reported_[i]) {
        continue;
      }
      if (simulation_.now() - aggregator_last_seen_[i] >
          options_.aggregator_timeout) {
        aggregators_[i] = net::kInvalidNode;
        ++aggregator_failovers_;
        changed = true;
        if (recorder_ != nullptr) {
          recorder_->emit(simulation_.now(),
                          obs::TraceEventKind::kRecoveryAggregatorFailover,
                          obs::TraceComponent::kController, {}, i,
                          aggregator_nodes_[i]);
        }
      }
    }
    if (changed) rebroadcast_routing();
  }

  // Phase 1: rebuild the membership view of EVERY active instance before
  // any policy decision. Pruning one instance changes the consolidated
  // telemetry (members_total_, effectively the idle pool the engine will
  // act on), so interleaving prune and decide — the old single-pass loop —
  // handed later instances' decisions a snapshot in which earlier
  // instances were current but their own staleness was not yet applied.
  if (options_.heartbeat_mode == HeartbeatMode::kDelta) {
    // Delta mode: staleness pruning happened upstream (aggregator expiry
    // deltas arrive between ticks and are applied on ingest); only direct
    // reporters — the failover fallback — need a windowed walk, and it is
    // over that small worklist, not the whole membership.
    prune_direct();
    for (auto& [id, inst] : instances_) {
      if (!inst.status.active) continue;
      inst.pruned_last_tick = inst.pruned_since_tick;
      inst.pruned_since_tick = 0;
    }
  } else {
    for (auto& [id, inst] : instances_) {
      if (!inst.status.active) continue;
      prune_instance(id, inst);
    }
  }

  // Phase 2: per-instance decisions against the fully rebuilt view.
  for (auto& [id, inst] : instances_) {
    if (!inst.status.active) continue;

    const std::size_t current = inst.members.size() + inst.joining.size();
    const std::size_t target = inst.status.target_size;

    if (current < target && inst.recruiting) {
      // Recomposition: retransmit the wakeup with an engine-chosen
      // probability — but only after the previous wakeup has had time to
      // propagate (mean acquisition is 1.5 carousel cycles; we wait twice
      // that before concluding that members are missing rather than still
      // joining).
      const sim::SimTime cooldown =
          sim::SimTime::from_seconds(
              1.5 * channels_.front()->acquisition_horizon_seconds()) +
          inst.spec.heartbeat_interval;
      if (simulation_.now() - inst.last_wakeup_at < cooldown) {
        continue;
      }
      // Naive mode: the windowed idle-pool scan is O(population) and stays
      // confined to the recruitment path past the cooldown. Delta mode
      // reads the O(1) incremental mirror instead.
      const std::size_t idle = recruitment_idle_pool();
      if (idle == 0) {
        // Nobody to recruit: rebroadcasting would only churn the carousel.
        // A future idle heartbeat re-enables recomposition.
        continue;
      }
      const control::ControlAction action =
          engine_->decide(observe(id, inst, idle));
      if (action.probability && *action.probability > 0.0) {
        ControlMessage wakeup;
        wakeup.type = ControlType::kWakeup;
        wakeup.instance = id;
        wakeup.requirements = inst.spec.requirements;
        wakeup.heartbeat_interval = inst.spec.heartbeat_interval;
        wakeup.image = inst.image;
        wakeup.controller_node = node_id_;
        wakeup.backend_node = inst.backend_node;
        wakeup.probability = *action.probability;
        wakeup.trace = inst.trace;
        broadcast_control(wakeup);
        inst.last_wakeup_at = simulation_.now();
        ++inst.status.wakeups_broadcast;
        ++recompositions_;
      }
      if (options_.heartbeat_mode == HeartbeatMode::kDelta) {
        trim_direct(inst, action.trim);
        inst.pending_trims = 0;
      } else {
        inst.pending_trims = action.trim;
      }
    } else if (inst.members.size() > target) {
      // Trim only confirmed members; joiners that push past the target are
      // shed as their busy heartbeats arrive. The engine decides how many
      // (a hysteresis band may hold some back); no idle-pool scan here.
      const control::ControlAction action =
          engine_->decide(observe(id, inst, /*idle_pool=*/0));
      if (options_.heartbeat_mode == HeartbeatMode::kDelta) {
        trim_direct(inst, action.trim);
        inst.pending_trims = 0;
      } else {
        inst.pending_trims = action.trim;
      }
    } else {
      inst.pending_trims = 0;
    }
  }
}

void Controller::prune_instance(InstanceId id, Instance& inst) {
  // Prune members whose heartbeats stopped (receiver switched off or tuned
  // away): they are presumed lost and must be replaced.
  const sim::SimTime horizon = staleness_horizon(inst);
  std::vector<std::uint64_t> stale;
  for (std::uint64_t member : inst.members) {
    const PnaRecord* rec = find_pna(member);
    if (rec == nullptr || simulation_.now() - rec->last_seen > horizon) {
      stale.push_back(member);
    }
  }
  for (std::uint64_t member : stale) {
    inst.members.erase(member);
    --members_total_;
    ++members_pruned_;
    if (recorder_ != nullptr) {
      recorder_->emit(simulation_.now(), obs::TraceEventKind::kMemberPruned,
                      obs::TraceComponent::kController, inst.trace, member,
                      id);
    }
  }
  if (!stale.empty()) note_member_change(inst);
  std::vector<std::uint64_t> stale_joining;
  for (std::uint64_t j : inst.joining) {
    const PnaRecord* rec = find_pna(j);
    if (rec == nullptr || simulation_.now() - rec->last_seen > horizon) {
      stale_joining.push_back(j);
    }
  }
  for (std::uint64_t j : stale_joining) inst.joining.erase(j);
  inst.pruned_last_tick = stale.size();
}

}  // namespace oddci::core

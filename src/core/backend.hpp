#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "control/policy.hpp"
#include "core/messages.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulation.hpp"
#include "workload/job.hpp"

/// The OddCI Backend: manages the particular activities of one running
/// application — scheduling (bag-of-tasks dispatch to pulling PNAs),
/// provision of input data, and gathering of results.
///
/// Fault tolerance: tasks assigned to PNAs that disappear (churn) are
/// re-queued after `task_timeout`; duplicate results (a re-queued task
/// completed twice) are counted but only the first is kept.
///
/// Byzantine defense: with a Verifier attached (set_verifier), dispatch
/// becomes k-way redundant with quorum voting over result digests, task
/// polls may be answered with seeded spot-checks, and the outstanding
/// table is keyed per (task, replica). Without one, every verified-path
/// branch is skipped and the naive trajectory is byte-identical to the
/// pre-verification tree.
namespace oddci::core {

class Verifier;

struct BackendOptions {
  /// An outstanding assignment is re-queued after this long. Zero disables
  /// re-dispatch (suitable for churn-free runs).
  sim::SimTime task_timeout = sim::SimTime::zero();
  /// Cadence of the timeout sweep (only when task_timeout > 0).
  sim::SimTime sweep_interval = sim::SimTime::from_seconds(15);
  /// Per-task requeue cap: a task re-queued this many times is reported
  /// failed (and the job with it) instead of silently re-dispatched
  /// forever. Zero = unbounded (the pre-fault-injection behaviour).
  /// Crash-recovery requeues are exempt: they re-dispatch work the Backend
  /// lost, not work that keeps failing.
  int max_task_retries = 0;
  /// Acknowledge every received result with a TaskResultAckMessage so the
  /// sending PNA can stop its bounded upload retry. Off by default: without
  /// fault injection the wire never loses a result and the ack would be
  /// pure extra traffic.
  bool ack_results = false;
};

struct JobMetrics {
  sim::SimTime submitted_at;
  std::optional<sim::SimTime> completed_at;
  std::size_t task_count = 0;
  std::uint64_t assignments = 0;
  std::uint64_t reassignments = 0;
  std::uint64_t results_received = 0;
  /// Results for a task already done while the job was still active
  /// (re-dispatch or duplicate delivery finishing twice).
  std::uint64_t duplicate_results = 0;
  /// Results that arrived after the job ended (stragglers of the final
  /// re-dispatch wave).
  std::uint64_t late_results = 0;
  std::uint64_t aborts_received = 0;  ///< tasks handed back by reset PNAs
  std::uint64_t requests_denied = 0;  ///< NoTask replies
  std::uint64_t tasks_failed = 0;     ///< tasks that hit the retry cap
  std::uint64_t crash_requeues = 0;   ///< assignments lost to a Backend crash

  [[nodiscard]] double makespan_seconds() const {
    return completed_at ? (*completed_at - submitted_at).seconds() : -1.0;
  }
};

class Backend final : public net::Endpoint {
 public:
  Backend(sim::Simulation& simulation, net::Network& network,
          const net::LinkSpec& link, BackendOptions options = {});
  ~Backend() override;

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  [[nodiscard]] net::NodeId node_id() const { return node_id_; }

  /// Adjust the re-dispatch timeout. Takes effect immediately: the sweep
  /// task is started, retuned, or cancelled in place (zero disables
  /// re-dispatch even mid-job).
  void set_task_timeout(sim::SimTime timeout);
  [[nodiscard]] sim::SimTime task_timeout() const {
    return options_.task_timeout;
  }

  /// Submit a job to be served to PNAs of `instance`. Only one job may be
  /// active at a time (the paper pairs one Backend with one application).
  /// `on_complete` fires when the last result arrives. The makespan clock
  /// starts now unless an explicit `clock_start` is given (e.g. the moment
  /// the Provider requested the instance, to include the wakeup overhead).
  /// `trace` is the causal context the job's task events chain off (the
  /// instance's control.format context, typically).
  void submit(const workload::Job& job, InstanceId instance,
              std::function<void()> on_complete,
              std::optional<sim::SimTime> clock_start = std::nullopt,
              obs::TraceContext trace = {});

  /// Phi-driven job admission: consult the attached decision engine with
  /// the job's suitability parameters. True (always, without an engine or
  /// with the default floor of 0) means the job may be submitted; false
  /// means the engine deferred it — don't request an instance for it.
  /// Counting call: the engine tallies the verdict, so gate each job once.
  [[nodiscard]] bool would_admit(const workload::Job& job);

  /// Attach the decision engine consulted by would_admit(); nullptr (the
  /// default) admits everything.
  void set_decision_engine(control::DecisionEngine* engine) {
    engine_ = engine;
  }
  /// Parameters of the admission request: the per-node direct-channel
  /// capacity delta and the device slowdown scaling reference task seconds
  /// onto the member devices.
  void set_admission_context(util::BitRate delta, double task_slowdown) {
    admission_delta_ = delta;
    admission_slowdown_ = task_slowdown;
  }

  /// Attach the Byzantine-defense verifier consulted on every dispatch and
  /// result (nullptr, the default, keeps the naive single-dispatch path).
  /// Attach before the first submit(); the verifier must outlive the
  /// Backend's jobs.
  void set_verifier(Verifier* verifier) { verifier_ = verifier; }
  [[nodiscard]] Verifier* verifier() const { return verifier_; }

  [[nodiscard]] bool job_active() const { return active_; }
  /// True once a task exhausted its retry cap: the job ended (on_complete
  /// fired) but did not succeed.
  [[nodiscard]] bool job_failed() const { return job_failed_; }
  [[nodiscard]] std::size_t tasks_remaining() const {
    return pending_.size() + outstanding_.size();
  }
  [[nodiscard]] std::size_t tasks_done() const { return done_count_; }
  [[nodiscard]] const JobMetrics& metrics() const { return metrics_; }

  /// Per-task completion times (seconds since clock start), for percentile
  /// analyses.
  [[nodiscard]] const std::vector<double>& completion_times() const {
    return completion_times_;
  }

  /// Dispatch -> first result latency per task, across jobs.
  [[nodiscard]] const obs::LogHistogram& task_cycle_latency() const {
    return task_cycle_;
  }

  /// Expose the dispatch histogram and queue-depth probes under
  /// "backend.*" in `registry`. The backend must outlive snapshot() calls.
  void link_metrics(obs::MetricsRegistry& registry) const;

  /// Attach a tracer: records a "task.cycle" span per dispatched task
  /// (assignment -> first result; abandoned on abort/re-queue). nullptr
  /// detaches.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Attach a flight recorder: dispatch/result/abort/requeue hops are
  /// emitted as causally linked events, and assignments carry the context
  /// to the executing PNA. nullptr detaches.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

  /// Fault injection: drop off the network and lose all in-flight state
  /// (the outstanding-assignment table). The durable job ledger — which
  /// tasks are done, failed, or pending, and the per-task retry counts —
  /// survives, as a real Backend would keep it in stable storage.
  void crash();
  /// Fault injection: come back up. Re-queues every task that was
  /// outstanding at crash time (its assignment record is gone, so the
  /// timeout sweep could never reclaim it).
  void restart();

  // --- net::Endpoint -------------------------------------------------------
  void on_message(net::NodeId from, const net::MessagePtr& message) override;

 private:
  struct Outstanding {
    net::NodeId assignee;
    sim::SimTime assigned_at;
    obs::TraceContext trace;  ///< context of the dispatch event
  };

  /// Outstanding-table key: task index in the low bits, replica slot in the
  /// high 16. The naive path always dispatches replica 0, so its keys stay
  /// numerically identical to the raw task index.
  static constexpr std::uint64_t kReplicaShift = 48;
  static constexpr std::uint64_t kIndexMask = (1ull << kReplicaShift) - 1;
  [[nodiscard]] static constexpr std::uint64_t vkey(
      std::uint64_t index, std::uint32_t replica) noexcept {
    return index | (static_cast<std::uint64_t>(replica) << kReplicaShift);
  }

  void handle_request(net::NodeId from, const TaskRequestMessage& request);
  void handle_request_verified(net::NodeId from,
                               const TaskRequestMessage& request);
  void handle_result(net::NodeId from, const TaskResultMessage& result);
  void handle_result_verified(net::NodeId from,
                              const TaskResultMessage& result);
  void sweep_timeouts();
  /// Re-queue `index` unless it exhausted the retry cap (then the task —
  /// and with it the job — is failed). Returns true when re-queued.
  bool note_retry(std::uint64_t index);
  /// Mark-aware pending push: in verified mode a task needing more replicas
  /// may already sit in the queue; it is never queued twice.
  void push_pending(std::uint64_t index);
  void fail_task(std::uint64_t index);
  void check_job_done();
  void arm_sweeper();

  sim::Simulation& simulation_;
  net::Network& network_;
  BackendOptions options_;
  net::NodeId node_id_ = net::kInvalidNode;

  bool active_ = false;
  InstanceId instance_ = kNoInstance;
  obs::TraceContext job_trace_;
  workload::Job job_;
  std::function<void()> on_complete_;

  std::deque<std::uint64_t> pending_;                     // task indices
  std::unordered_map<std::uint64_t, Outstanding> outstanding_;
  std::vector<bool> done_;
  std::size_t done_count_ = 0;
  /// Times each task has been re-queued (timeout or abort); checked
  /// against max_task_retries.
  std::vector<std::uint16_t> retry_counts_;
  std::vector<bool> failed_;
  std::size_t failed_count_ = 0;
  bool job_failed_ = false;
  bool crashed_ = false;
  JobMetrics metrics_;
  std::vector<double> completion_times_;

  sim::PeriodicTask sweeper_;
  bool sweeper_running_ = false;

  control::DecisionEngine* engine_ = nullptr;
  util::BitRate admission_delta_;
  double admission_slowdown_ = 1.0;

  Verifier* verifier_ = nullptr;
  /// Verified mode only: 1 while the task index sits in pending_ (a task
  /// needing several replicas is queued once, not once per replica).
  std::vector<std::uint8_t> pending_marks_;
  /// Verified mode only: quorum-driven re-queues (escalations and dropped
  /// rounds) per task — deliberately separate from retry_counts_ so a
  /// noisy vote can never trip the loss-retry cap.
  std::vector<std::uint16_t> revote_counts_;

  obs::LogHistogram task_cycle_{1e-3};
  /// Retry count of each task at first-result time (how many dispatches a
  /// completed task actually took).
  obs::LogHistogram task_retries_{1.0};
  /// Verified mode: revote count of each task at conclusion time.
  obs::LogHistogram task_revotes_{1.0};
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace oddci::core

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/messages.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulation.hpp"
#include "workload/job.hpp"

/// The OddCI Backend: manages the particular activities of one running
/// application — scheduling (bag-of-tasks dispatch to pulling PNAs),
/// provision of input data, and gathering of results.
///
/// Fault tolerance: tasks assigned to PNAs that disappear (churn) are
/// re-queued after `task_timeout`; duplicate results (a re-queued task
/// completed twice) are counted but only the first is kept.
namespace oddci::core {

struct BackendOptions {
  /// An outstanding assignment is re-queued after this long. Zero disables
  /// re-dispatch (suitable for churn-free runs).
  sim::SimTime task_timeout = sim::SimTime::zero();
  /// Cadence of the timeout sweep (only when task_timeout > 0).
  sim::SimTime sweep_interval = sim::SimTime::from_seconds(15);
};

struct JobMetrics {
  sim::SimTime submitted_at;
  std::optional<sim::SimTime> completed_at;
  std::size_t task_count = 0;
  std::uint64_t assignments = 0;
  std::uint64_t reassignments = 0;
  std::uint64_t results_received = 0;
  std::uint64_t duplicate_results = 0;
  std::uint64_t aborts_received = 0;  ///< tasks handed back by reset PNAs
  std::uint64_t requests_denied = 0;  ///< NoTask replies

  [[nodiscard]] double makespan_seconds() const {
    return completed_at ? (*completed_at - submitted_at).seconds() : -1.0;
  }
};

class Backend final : public net::Endpoint {
 public:
  Backend(sim::Simulation& simulation, net::Network& network,
          const net::LinkSpec& link, BackendOptions options = {});
  ~Backend() override;

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  [[nodiscard]] net::NodeId node_id() const { return node_id_; }

  /// Adjust the re-dispatch timeout; takes effect at the next submit().
  void set_task_timeout(sim::SimTime timeout) {
    options_.task_timeout = timeout;
  }
  [[nodiscard]] sim::SimTime task_timeout() const {
    return options_.task_timeout;
  }

  /// Submit a job to be served to PNAs of `instance`. Only one job may be
  /// active at a time (the paper pairs one Backend with one application).
  /// `on_complete` fires when the last result arrives. The makespan clock
  /// starts now unless an explicit `clock_start` is given (e.g. the moment
  /// the Provider requested the instance, to include the wakeup overhead).
  /// `trace` is the causal context the job's task events chain off (the
  /// instance's control.format context, typically).
  void submit(const workload::Job& job, InstanceId instance,
              std::function<void()> on_complete,
              std::optional<sim::SimTime> clock_start = std::nullopt,
              obs::TraceContext trace = {});

  [[nodiscard]] bool job_active() const { return active_; }
  [[nodiscard]] std::size_t tasks_remaining() const {
    return pending_.size() + outstanding_.size();
  }
  [[nodiscard]] std::size_t tasks_done() const { return done_count_; }
  [[nodiscard]] const JobMetrics& metrics() const { return metrics_; }

  /// Per-task completion times (seconds since clock start), for percentile
  /// analyses.
  [[nodiscard]] const std::vector<double>& completion_times() const {
    return completion_times_;
  }

  /// Dispatch -> first result latency per task, across jobs.
  [[nodiscard]] const obs::LogHistogram& task_cycle_latency() const {
    return task_cycle_;
  }

  /// Expose the dispatch histogram and queue-depth probes under
  /// "backend.*" in `registry`. The backend must outlive snapshot() calls.
  void link_metrics(obs::MetricsRegistry& registry) const;

  /// Attach a tracer: records a "task.cycle" span per dispatched task
  /// (assignment -> first result; abandoned on abort/re-queue). nullptr
  /// detaches.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Attach a flight recorder: dispatch/result/abort/requeue hops are
  /// emitted as causally linked events, and assignments carry the context
  /// to the executing PNA. nullptr detaches.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

  // --- net::Endpoint -------------------------------------------------------
  void on_message(net::NodeId from, const net::MessagePtr& message) override;

 private:
  struct Outstanding {
    net::NodeId assignee;
    sim::SimTime assigned_at;
    obs::TraceContext trace;  ///< context of the dispatch event
  };

  void handle_request(net::NodeId from, const TaskRequestMessage& request);
  void handle_result(const TaskResultMessage& result);
  void sweep_timeouts();

  sim::Simulation& simulation_;
  net::Network& network_;
  BackendOptions options_;
  net::NodeId node_id_ = net::kInvalidNode;

  bool active_ = false;
  InstanceId instance_ = kNoInstance;
  obs::TraceContext job_trace_;
  workload::Job job_;
  std::function<void()> on_complete_;

  std::deque<std::uint64_t> pending_;                     // task indices
  std::unordered_map<std::uint64_t, Outstanding> outstanding_;
  std::vector<bool> done_;
  std::size_t done_count_ = 0;
  JobMetrics metrics_;
  std::vector<double> completion_times_;

  sim::PeriodicTask sweeper_;
  bool sweeper_running_ = false;

  obs::LogHistogram task_cycle_{1e-3};
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace oddci::core

#include "core/provider.hpp"

#include <stdexcept>

namespace oddci::core {

Provider::Provider(Controller& controller) : controller_(&controller) {
  controller_->set_size_callback(
      [this](InstanceId id, std::size_t current, std::size_t target) {
        on_size_change(id, current, target);
      });
}

Provider::Provider(Controller& controller, sim::Simulation& simulation,
                   AdmissionOptions admission)
    : Provider(controller) {
  if (admission.capacity_margin <= 0.0) {
    throw std::invalid_argument("Provider: capacity margin must be > 0");
  }
  if (admission.review_interval <= sim::SimTime::zero()) {
    throw std::invalid_argument("Provider: review interval must be > 0");
  }
  simulation_ = &simulation;
  admission_ = admission;
  reviewer_ = sim::PeriodicTask(
      simulation, simulation.now() + admission_.review_interval,
      admission_.review_interval, [this] { review_queue(); });
  reviewer_running_ = true;
}

Provider::~Provider() {
  if (reviewer_running_) reviewer_.cancel();
  // The Controller may outlive this Provider; the size callback captures
  // `this` and must not dangle.
  controller_->set_size_callback(nullptr);
}

InstanceId Provider::request_instance(const InstanceSpec& spec,
                                      net::NodeId backend_node,
                                      ReadyCallback on_ready) {
  ++stats_.instances_requested;
  obs::TraceContext request;
  if (recorder_ != nullptr) {
    // Root of the causal chain: a user-facing provisioning request.
    request = recorder_->emit(controller_->simulation().now(),
                              obs::TraceEventKind::kInstanceRequest,
                              obs::TraceComponent::kProvider, {},
                              stats_.instances_requested, spec.target_size);
  }
  const InstanceId id =
      controller_->create_instance(spec, backend_node, request);
  if (on_ready) {
    waiting_ready_.emplace(id, std::move(on_ready));
  }
  return id;
}

void Provider::release_instance(InstanceId id) {
  ++stats_.instances_released;
  if (recorder_ != nullptr) {
    recorder_->emit(controller_->simulation().now(),
                    obs::TraceEventKind::kInstanceReleased,
                    obs::TraceComponent::kProvider,
                    controller_->trace_context(id), id, id);
  }
  waiting_ready_.erase(id);
  controller_->destroy_instance(id);
  // Freed capacity may admit the queue head (heartbeats from the released
  // members will also trigger size callbacks, but be eager).
  review_queue();
}

void Provider::resize_instance(InstanceId id, std::size_t new_target) {
  ++stats_.resizes;
  controller_->resize_instance(id, new_target);
}

Provider::Ticket Provider::enqueue_request(const InstanceSpec& spec,
                                           net::NodeId backend_node,
                                           AdmittedCallback on_admitted,
                                           ReadyCallback on_ready) {
  if (simulation_ == nullptr) {
    throw std::logic_error(
        "Provider: admission queue requires the simulation-aware "
        "constructor");
  }
  if (spec.target_size == 0) {
    throw std::invalid_argument("Provider: target size must be > 0");
  }
  const Ticket ticket = next_ticket_++;
  queue_.push_back(Queued{ticket, spec, backend_node,
                          std::move(on_admitted), std::move(on_ready)});
  ++stats_.requests_queued;
  review_queue();
  return ticket;
}

bool Provider::cancel_request(Ticket ticket) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->ticket == ticket) {
      queue_.erase(it);
      ++stats_.requests_cancelled;
      return true;
    }
  }
  return false;
}

void Provider::review_queue() {
  // Strict FIFO: stop at the first request that does not fit.
  while (!queue_.empty()) {
    const Queued& head = queue_.front();
    const double required = static_cast<double>(head.spec.target_size) *
                            admission_.capacity_margin;
    if (static_cast<double>(controller_->idle_pool_estimate()) < required) {
      return;
    }
    Queued admitted = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.requests_admitted;
    const InstanceId id =
        request_instance(admitted.spec, admitted.backend,
                         std::move(admitted.on_ready));
    if (admitted.on_admitted) {
      admitted.on_admitted(admitted.ticket, id);
    }
  }
}

void Provider::on_size_change(InstanceId id, std::size_t current,
                              std::size_t target) {
  if (current < target) {
    // Shrinkage may have freed idle capacity for queued requests.
    if (!queue_.empty()) review_queue();
    return;
  }
  auto it = waiting_ready_.find(id);
  if (it == waiting_ready_.end()) return;
  auto cb = std::move(it->second);
  waiting_ready_.erase(it);
  const InstanceStatus* st = controller_->status(id);
  cb(id, st && st->reached_target_at ? *st->reached_target_at
                                     : sim::SimTime::zero());
}

void Provider::link_metrics(obs::MetricsRegistry& registry) const {
  registry.link_probe("provider.instances_requested", [this] {
    return static_cast<double>(stats_.instances_requested);
  });
  registry.link_probe("provider.instances_released", [this] {
    return static_cast<double>(stats_.instances_released);
  });
  registry.link_probe("provider.resizes", [this] {
    return static_cast<double>(stats_.resizes);
  });
  registry.link_probe("provider.requests_queued", [this] {
    return static_cast<double>(stats_.requests_queued);
  });
  registry.link_probe("provider.requests_admitted", [this] {
    return static_cast<double>(stats_.requests_admitted);
  });
  registry.link_probe("provider.requests_cancelled", [this] {
    return static_cast<double>(stats_.requests_cancelled);
  });
  registry.link_probe("provider.queue_depth", [this] {
    return static_cast<double>(queue_.size());
  });
}

}  // namespace oddci::core

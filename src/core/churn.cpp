#include "core/churn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oddci::core {

void ChurnOptions::validate() const {
  if (mean_on_seconds <= 0.0 || mean_off_seconds <= 0.0) {
    throw std::invalid_argument("ChurnOptions: mean durations must be > 0");
  }
  if (in_use_probability < 0.0 || in_use_probability > 1.0) {
    throw std::invalid_argument(
        "ChurnOptions: in_use_probability out of [0,1]");
  }
  if (initial_on_fraction > 1.0) {
    throw std::invalid_argument(
        "ChurnOptions: initial_on_fraction out of range");
  }
}

void DiurnalOptions::validate() const {
  if (evening_start_hour_mean < 0.0 || evening_start_hour_mean >= 24.0 ||
      day_start_hour_mean < 0.0 || day_start_hour_mean >= 24.0) {
    throw std::invalid_argument("DiurnalOptions: start hours out of [0,24)");
  }
  if (evening_start_hour_sigma < 0.0 || day_start_hour_sigma < 0.0 ||
      viewing_hours_sigma < 0.0) {
    throw std::invalid_argument("DiurnalOptions: negative sigma");
  }
  if (viewing_hours_median <= 0.0) {
    throw std::invalid_argument("DiurnalOptions: session length must be > 0");
  }
  if (day_session_probability < 0.0 || day_session_probability > 1.0 ||
      standby_probability < 0.0 || standby_probability > 1.0) {
    throw std::invalid_argument("DiurnalOptions: probability out of [0,1]");
  }
}

DiurnalAudience::DiurnalAudience(sim::Simulation& simulation,
                                 std::vector<dtv::Receiver*> receivers,
                                 std::uint64_t seed, DiurnalOptions options)
    : simulation_(simulation),
      receivers_(std::move(receivers)),
      rng_(seed),
      options_(options),
      active_(std::make_shared<bool>(false)) {
  options_.validate();
}

DiurnalAudience::~DiurnalAudience() { *active_ = false; }

dtv::PowerMode DiurnalAudience::idle_mode() {
  return rng_.bernoulli(options_.standby_probability)
             ? dtv::PowerMode::kStandby
             : dtv::PowerMode::kOff;
}

void DiurnalAudience::set_mode(std::size_t index, dtv::PowerMode mode) {
  receivers_[index]->set_power_mode(mode);
}

void DiurnalAudience::start(double start_hour) {
  *active_ = true;
  start_hour_ = start_hour;
  // The current "day" began `start_hour` hours ago in simulated time.
  const sim::SimTime midnight =
      simulation_.now() - sim::SimTime::from_hours(start_hour);
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    // Initial state: idle-mode until a session starts today.
    set_mode(i, idle_mode());
    plan_day(i, midnight);
  }
}

void DiurnalAudience::plan_day(std::size_t index, sim::SimTime midnight) {
  std::weak_ptr<bool> active = active_;
  auto schedule_session = [&](double start_hour, double hours) {
    const sim::SimTime begin =
        midnight + sim::SimTime::from_hours(start_hour);
    const sim::SimTime end = begin + sim::SimTime::from_hours(hours);
    if (end <= simulation_.now()) return;  // already over
    if (begin > simulation_.now()) {
      simulation_.schedule_timer_at(begin,
                                    [this, index, active] {
                                      auto guard = active.lock();
                                      if (!guard || !*guard) return;
                                      set_mode(index, dtv::PowerMode::kInUse);
                                    },
                                    sim::SimTime::zero(),
                                    sim::EventPriority::kDefault);
    } else {
      set_mode(index, dtv::PowerMode::kInUse);
    }
    simulation_.schedule_timer_at(end,
                                  [this, index, active] {
                                    auto guard = active.lock();
                                    if (!guard || !*guard) return;
                                    set_mode(index, idle_mode());
                                  },
                                  sim::SimTime::zero(),
                                  sim::EventPriority::kDefault);
  };

  // Evening prime-time session.
  const double evening = std::clamp(
      rng_.normal(options_.evening_start_hour_mean,
                  options_.evening_start_hour_sigma),
      0.0, 26.0);
  const double evening_len = rng_.lognormal(
      std::log(options_.viewing_hours_median), options_.viewing_hours_sigma);
  schedule_session(evening, evening_len);

  // Optional daytime session.
  if (rng_.bernoulli(options_.day_session_probability)) {
    const double day = std::clamp(
        rng_.normal(options_.day_start_hour_mean,
                    options_.day_start_hour_sigma),
        0.0, 24.0);
    schedule_session(day, rng_.lognormal(
                              std::log(options_.viewing_hours_median / 2.0),
                              options_.viewing_hours_sigma));
  }

  // Re-plan at the receiver's next midnight.
  const sim::SimTime next_midnight = midnight + sim::SimTime::from_hours(24);
  std::weak_ptr<bool> weak = active_;
  simulation_.schedule_timer_at(next_midnight,
                                [this, index, next_midnight, weak] {
                                  auto guard = weak.lock();
                                  if (!guard || !*guard) return;
                                  plan_day(index, next_midnight);
                                },
                                sim::SimTime::zero(),
                                sim::EventPriority::kDefault);
}

std::size_t DiurnalAudience::in_use_count() const {
  std::size_t n = 0;
  for (const auto* r : receivers_) {
    if (r->power_mode() == dtv::PowerMode::kInUse) ++n;
  }
  return n;
}

std::size_t DiurnalAudience::standby_count() const {
  std::size_t n = 0;
  for (const auto* r : receivers_) {
    if (r->power_mode() == dtv::PowerMode::kStandby) ++n;
  }
  return n;
}

std::size_t DiurnalAudience::off_count() const {
  std::size_t n = 0;
  for (const auto* r : receivers_) {
    if (!r->powered()) ++n;
  }
  return n;
}

ChurnProcess::ChurnProcess(sim::Simulation& simulation,
                           std::vector<dtv::Receiver*> receivers,
                           std::uint64_t seed, ChurnOptions options)
    : simulation_(simulation),
      receivers_(std::move(receivers)),
      rng_(seed),
      options_(options),
      active_(std::make_shared<bool>(false)) {
  options_.validate();
}

ChurnProcess::~ChurnProcess() { stop(); }

dtv::PowerMode ChurnProcess::sample_on_mode() {
  return rng_.bernoulli(options_.in_use_probability)
             ? dtv::PowerMode::kInUse
             : dtv::PowerMode::kStandby;
}

void ChurnProcess::start() {
  *active_ = true;
  const double on_fraction = options_.initial_on_fraction >= 0.0
                                 ? options_.initial_on_fraction
                                 : options_.steady_state_on_fraction();
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    if (rng_.bernoulli(on_fraction)) {
      receivers_[i]->set_power_mode(sample_on_mode());
    } else {
      receivers_[i]->set_power_mode(dtv::PowerMode::kOff);
    }
    schedule_toggle(i);
  }
}

void ChurnProcess::stop() { *active_ = false; }

void ChurnProcess::schedule_toggle(std::size_t index) {
  const bool on = receivers_[index]->powered();
  const double dwell = rng_.exponential(on ? options_.mean_on_seconds
                                           : options_.mean_off_seconds);
  std::weak_ptr<bool> active = active_;
  // Dwell expiries ride the timer wheel: a million independent arrival
  // processes cost O(1) each instead of O(log n) heap churn.
  simulation_.schedule_timer_in(sim::SimTime::from_seconds(dwell),
                                [this, index, active] {
                                  auto guard = active.lock();
                                  if (!guard || !*guard) return;
                                  toggle(index);
                                },
                                sim::SimTime::zero(),
                                sim::EventPriority::kDefault);
}

void ChurnProcess::toggle(std::size_t index) {
  dtv::Receiver* receiver = receivers_[index];
  if (receiver->powered()) {
    receiver->set_power_mode(dtv::PowerMode::kOff);
    ++stats_.switch_offs;
  } else {
    receiver->set_power_mode(sample_on_mode());
    ++stats_.switch_ons;
  }
  schedule_toggle(index);
}

}  // namespace oddci::core

#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

/// Work-queue thread pool used to fan out independent simulation replicas
/// and benchmark sweep points. The simulation kernel itself stays
/// deterministic-sequential; only whole, independent runs execute in
/// parallel (shared inputs are immutable, results return via futures).
namespace oddci::util {

class ThreadPool {
 public:
  /// `threads == 0` uses the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Submit a callable; returns a future of its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace oddci::util

#include "util/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace oddci::util {

namespace {
std::string trim(const std::string& s) {
  auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}
}  // namespace

Config Config::parse(const std::string& text) {
  Config cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("Config: missing '=' on line " +
                               std::to_string(lineno));
    }
    auto key = trim(line.substr(0, eq));
    auto value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("Config: empty key on line " +
                               std::to_string(lineno));
    }
    cfg.values_[key] = value;
  }
  return cfg;
}

Config Config::load(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    throw std::runtime_error("Config: cannot open " + path);
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse(ss.str());
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::string> Config::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key,
                               const std::string& fallback) const {
  return get(key).value_or(fallback);
}

long long Config::get_int(const std::string& key, long long fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  try {
    std::size_t consumed = 0;
    const long long value = std::stoll(*v, &consumed);
    if (consumed != v->size()) {
      throw std::invalid_argument("trailing characters");
    }
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("Config: non-integer value '" + *v +
                             "' for key " + key);
  }
}

double Config::get_double(const std::string& key, double fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(*v, &consumed);
    if (consumed != v->size()) {
      throw std::invalid_argument("trailing characters");
    }
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("Config: non-numeric value '" + *v +
                             "' for key " + key);
  }
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  throw std::runtime_error("Config: non-boolean value for key " + key);
}

}  // namespace oddci::util

#include "util/logging.hpp"

#include <cstdio>
#include <iostream>
#include <utility>

namespace oddci::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::set_clock(Clock clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::string line = "[";
  line += to_string(level);
  line += "] ";
  if (clock_) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "t=%.6f ", clock_());
    line += buf;
  }
  line += component;
  line += ": ";
  line += message;
  if (sink_) {
    sink_(level, line);
  } else {
    std::clog << line << "\n";
  }
}

LogStream::~LogStream() {
  Logger::instance().log(level_, component_, os_.str());
}

}  // namespace oddci::util

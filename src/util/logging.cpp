#include "util/logging.hpp"

#include <iostream>

namespace oddci::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::log(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (!enabled(level)) return;
  std::lock_guard<std::mutex> lock(mutex_);
  std::clog << "[" << to_string(level) << "] " << component << ": " << message
            << "\n";
}

LogStream::~LogStream() {
  Logger::instance().log(level_, component_, os_.str());
}

}  // namespace oddci::util

#pragma once

#include <map>
#include <optional>
#include <string>

/// Tiny `key = value` configuration parser used by the examples to make
/// scenario parameters editable without recompiling. Supports comments
/// (`#`), blank lines, and typed getters with defaults.
namespace oddci::util {

class Config {
 public:
  Config() = default;

  /// Parse from text. Throws std::runtime_error on malformed lines.
  static Config parse(const std::string& text);
  /// Parse a file; throws std::runtime_error if unreadable.
  static Config load(const std::string& path);

  void set(const std::string& key, const std::string& value);

  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace oddci::util

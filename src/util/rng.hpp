#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

/// Deterministic pseudo-random number generation.
///
/// The simulation must be bit-reproducible across platforms and standard
/// library implementations, so we implement the generators and the variate
/// transforms ourselves instead of relying on `std::*_distribution` (whose
/// algorithms are unspecified by the standard).
namespace oddci::util {

/// SplitMix64 — used to seed Xoshiro and as a cheap standalone generator.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Derive the seed of a named sub-stream from a root seed: FNV-1a over the
/// name, mixed with the root through one SplitMix64 step. Pure arithmetic —
/// consumes no draws from any live generator — so adding a stream never
/// perturbs existing replay sequences, and distinct names yield disjoint
/// streams from the same root.
[[nodiscard]] std::uint64_t stream_seed(std::uint64_t root,
                                        std::string_view name);

/// xoshiro256** 1.0 by Blackman & Vigna — fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();

  /// UniformRandomBitGenerator interface (usable with <algorithm> shuffles).
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Jump function: advances the state by 2^128 steps; used to derive
  /// independent streams for parallel replicas.
  void jump();

 private:
  std::uint64_t s_[4];
};

/// Variate generator wrapping an Xoshiro stream with explicit, portable
/// transforms (inverse-CDF where possible).
class Random {
 public:
  explicit Random(std::uint64_t seed) : gen_(seed) {}

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with given mean (> 0).
  double exponential(double mean);

  /// Weibull with shape k and scale lambda (both > 0).
  double weibull(double shape, double scale);

  /// Pareto with shape alpha (> 0) and minimum xm (> 0).
  double pareto(double alpha, double xm);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean, double stddev);

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Derive an independent child stream (jump-based).
  Random split();

  Xoshiro256& engine() { return gen_; }

 private:
  Xoshiro256 gen_;
};

}  // namespace oddci::util

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace oddci::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::confidence_halfwidth(double confidence) const {
  if (n_ < 2) return 0.0;
  // z-values for the normal approximation; adequate for the sample counts
  // the harnesses use (>= 10 replicas).
  double z = 1.6449;  // 90%
  if (confidence >= 0.99) {
    z = 2.5758;
  } else if (confidence >= 0.95) {
    z = 1.9600;
  }
  return z * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

double Samples::min() const {
  ensure_sorted();
  if (xs_.empty()) return 0.0;
  return xs_.front();
}

double Samples::max() const {
  ensure_sorted();
  if (xs_.empty()) return 0.0;
  return xs_.back();
}

double Samples::percentile(double q) const {
  if (xs_.empty()) return 0.0;
  if (q < 0.0 || q > 100.0) {
    throw std::invalid_argument("percentile: q out of [0,100]");
  }
  ensure_sorted();
  if (xs_.size() == 1) return xs_[0];
  const double rank = q / 100.0 * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs_[lo] + frac * (xs_[hi] - xs_[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi) {
  if (hi <= lo) {
    throw std::invalid_argument("Histogram: hi must be > lo");
  }
  if (buckets == 0) {
    throw std::invalid_argument("Histogram: need at least one bucket");
  }
  bucket_width_ = (hi - lo) / static_cast<double>(buckets);
  counts_.assign(buckets, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto i = static_cast<std::size_t>((x - lo_) / bucket_width_);
  if (i >= counts_.size()) i = counts_.size() - 1;  // fp edge
  ++counts_[i];
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + bucket_width_ * static_cast<double>(i + 1);
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    os << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ > 0) os << "underflow: " << underflow_ << "\n";
  if (overflow_ > 0) os << "overflow: " << overflow_ << "\n";
  return os.str();
}

}  // namespace oddci::util

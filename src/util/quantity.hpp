#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <stdexcept>
#include <string>

/// Strong quantity types for data sizes and rates.
///
/// The paper's evaluation mixes Mbits/s (channel capacities beta and delta)
/// with MBytes (image sizes). Encoding the unit in the type makes the
/// bandwidth arithmetic (e.g. W = 1.5 * I / beta) impossible to get wrong by
/// a factor of eight.
namespace oddci::util {

/// A quantity of data measured in bits. Supports exact integer arithmetic.
class Bits {
 public:
  constexpr Bits() = default;
  constexpr explicit Bits(std::int64_t bits) : bits_(bits) {}

  [[nodiscard]] constexpr std::int64_t count() const { return bits_; }
  [[nodiscard]] constexpr double bytes() const {
    return static_cast<double>(bits_) / 8.0;
  }
  [[nodiscard]] constexpr double kilobytes() const { return bytes() / 1024.0; }
  [[nodiscard]] constexpr double megabytes() const {
    return bytes() / (1024.0 * 1024.0);
  }

  static constexpr Bits from_bytes(std::int64_t b) { return Bits(b * 8); }
  static constexpr Bits from_kilobytes(std::int64_t kb) {
    return from_bytes(kb * 1024);
  }
  static constexpr Bits from_megabytes(std::int64_t mb) {
    return from_kilobytes(mb * 1024);
  }

  constexpr auto operator<=>(const Bits&) const = default;

  constexpr Bits& operator+=(Bits o) {
    bits_ += o.bits_;
    return *this;
  }
  constexpr Bits& operator-=(Bits o) {
    bits_ -= o.bits_;
    return *this;
  }

  friend constexpr Bits operator+(Bits a, Bits b) {
    return Bits(a.bits_ + b.bits_);
  }
  friend constexpr Bits operator-(Bits a, Bits b) {
    return Bits(a.bits_ - b.bits_);
  }
  friend constexpr Bits operator*(Bits a, std::int64_t k) {
    return Bits(a.bits_ * k);
  }
  friend constexpr Bits operator*(std::int64_t k, Bits a) { return a * k; }

  [[nodiscard]] std::string to_string() const;

 private:
  std::int64_t bits_ = 0;
};

/// A data rate in bits per second.
class BitRate {
 public:
  constexpr BitRate() = default;
  constexpr explicit BitRate(double bits_per_second)
      : bps_(bits_per_second) {}

  [[nodiscard]] constexpr double bps() const { return bps_; }
  [[nodiscard]] constexpr double kbps() const { return bps_ / 1e3; }
  [[nodiscard]] constexpr double mbps() const { return bps_ / 1e6; }

  static constexpr BitRate from_kbps(double k) { return BitRate(k * 1e3); }
  static constexpr BitRate from_mbps(double m) { return BitRate(m * 1e6); }

  constexpr auto operator<=>(const BitRate&) const = default;

  friend constexpr BitRate operator+(BitRate a, BitRate b) {
    return BitRate(a.bps_ + b.bps_);
  }
  friend constexpr BitRate operator-(BitRate a, BitRate b) {
    return BitRate(a.bps_ - b.bps_);
  }
  friend constexpr BitRate operator*(BitRate a, double k) {
    return BitRate(a.bps_ * k);
  }
  friend constexpr BitRate operator*(double k, BitRate a) { return a * k; }

  [[nodiscard]] std::string to_string() const;

 private:
  double bps_ = 0.0;
};

/// Transmission time in seconds for `data` at `rate`.
/// Throws std::invalid_argument for non-positive rates.
[[nodiscard]] double transmission_seconds(Bits data, BitRate rate);

}  // namespace oddci::util

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

/// Online and batch statistics used throughout the benchmark harnesses.
namespace oddci::util {

/// Welford's online algorithm: numerically stable running mean/variance.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Half-width of the confidence interval around the mean using a
  /// normal/t approximation. `confidence` in {0.90, 0.95, 0.99}.
  [[nodiscard]] double confidence_halfwidth(double confidence = 0.90) const;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch sample set with percentile queries. Keeps all samples.
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { xs_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated percentile, q in [0, 100].
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] const std::vector<double>& values() const { return xs_; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width linear histogram over [lo, hi) with under/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;

  /// Render a compact ASCII bar chart (for bench output).
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace oddci::util

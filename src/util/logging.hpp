#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>

/// Minimal leveled, thread-safe logger.
///
/// The simulation hot path never logs; logging exists for the examples and
/// for debugging protocol traces (level Trace).
///
/// A pluggable clock (`set_clock`) stamps every line with sim-time seconds
/// so protocol-trace output lines up with flight-recorder events on the
/// same clock; a pluggable sink (`set_sink`) redirects formatted lines
/// away from stderr (tests, file capture). Both are std::function so util
/// stays free of a sim dependency.
namespace oddci::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  /// Receives the sim time in seconds when installed.
  using Clock = std::function<double()>;
  /// Receives fully formatted lines (no trailing newline).
  using Sink = std::function<void(LogLevel, const std::string& line)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// Install/remove the timestamp source. While installed, lines carry a
  /// `t=<seconds>` field. Clear before the clock's owner is destroyed.
  void set_clock(Clock clock);
  void clear_clock() { set_clock(nullptr); }

  /// Install/remove the output sink. Default (none) writes to std::clog.
  void set_sink(Sink sink);
  void clear_sink() { set_sink(nullptr); }

  void log(LogLevel level, const std::string& component,
           const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kInfo;
  Clock clock_;
  Sink sink_;
  std::mutex mutex_;
};

[[nodiscard]] const char* to_string(LogLevel level);

/// Streaming helper: LOG_AT(kInfo, "controller") << "instance " << id;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream();

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace oddci::util

#define ODDCI_LOG(level, component)                                     \
  if (!::oddci::util::Logger::instance().enabled(level)) {              \
  } else                                                                \
    ::oddci::util::LogStream(level, component)

#define ODDCI_LOG_TRACE(component) \
  ODDCI_LOG(::oddci::util::LogLevel::kTrace, component)
#define ODDCI_LOG_INFO(component) \
  ODDCI_LOG(::oddci::util::LogLevel::kInfo, component)
#define ODDCI_LOG_DEBUG(component) \
  ODDCI_LOG(::oddci::util::LogLevel::kDebug, component)
#define ODDCI_LOG_WARN(component) \
  ODDCI_LOG(::oddci::util::LogLevel::kWarn, component)
#define ODDCI_LOG_ERROR(component) \
  ODDCI_LOG(::oddci::util::LogLevel::kError, component)

#pragma once

#include <mutex>
#include <sstream>
#include <string>

/// Minimal leveled, thread-safe logger.
///
/// The simulation hot path never logs; logging exists for the examples and
/// for debugging protocol traces (level Trace).
namespace oddci::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  void log(LogLevel level, const std::string& component,
           const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kInfo;
  std::mutex mutex_;
};

[[nodiscard]] const char* to_string(LogLevel level);

/// Streaming helper: LOG_AT(kInfo, "controller") << "instance " << id;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream();

  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace oddci::util

#define ODDCI_LOG(level, component)                                     \
  if (!::oddci::util::Logger::instance().enabled(level)) {              \
  } else                                                                \
    ::oddci::util::LogStream(level, component)

#define ODDCI_LOG_INFO(component) \
  ODDCI_LOG(::oddci::util::LogLevel::kInfo, component)
#define ODDCI_LOG_DEBUG(component) \
  ODDCI_LOG(::oddci::util::LogLevel::kDebug, component)
#define ODDCI_LOG_WARN(component) \
  ODDCI_LOG(::oddci::util::LogLevel::kWarn, component)
#define ODDCI_LOG_ERROR(component) \
  ODDCI_LOG(::oddci::util::LogLevel::kError, component)

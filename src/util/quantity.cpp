#include "util/quantity.hpp"

#include <sstream>

namespace oddci::util {

std::string Bits::to_string() const {
  std::ostringstream os;
  const double b = bytes();
  if (b >= 1024.0 * 1024.0) {
    os << megabytes() << " MB";
  } else if (b >= 1024.0) {
    os << kilobytes() << " KB";
  } else {
    os << bits_ << " bits";
  }
  return os.str();
}

std::string BitRate::to_string() const {
  std::ostringstream os;
  if (bps_ >= 1e6) {
    os << mbps() << " Mbps";
  } else if (bps_ >= 1e3) {
    os << kbps() << " Kbps";
  } else {
    os << bps_ << " bps";
  }
  return os.str();
}

double transmission_seconds(Bits data, BitRate rate) {
  if (rate.bps() <= 0.0) {
    throw std::invalid_argument("transmission_seconds: rate must be > 0");
  }
  if (data.count() < 0) {
    throw std::invalid_argument("transmission_seconds: negative data size");
  }
  return static_cast<double>(data.count()) / rate.bps();
}

}  // namespace oddci::util

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

/// ASCII table renderer used by the benchmark harnesses to print rows in
/// the same layout as the paper's tables.
namespace oddci::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic values with the given precision.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_int(long long v);

  [[nodiscard]] std::string render() const;
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace oddci::util

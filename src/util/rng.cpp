#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace oddci::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t stream_seed(std::uint64_t root, std::string_view name) {
  // FNV-1a, 64-bit.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return SplitMix64(root ^ h).next();
}

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) {
    s = sm.next();
  }
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

double Random::uniform() {
  // 53-bit mantissa trick: uniform double in [0, 1).
  return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
}

double Random::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Random::uniform_u64(std::uint64_t n) {
  if (n == 0) {
    throw std::invalid_argument("uniform_u64: n must be > 0");
  }
  // Lemire's nearly-divisionless bounded generation with rejection.
  std::uint64_t x = gen_.next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = gen_.next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Random::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Random::exponential(double mean) {
  if (mean <= 0.0) {
    throw std::invalid_argument("exponential: mean must be > 0");
  }
  double u = uniform();
  // Avoid log(0); uniform() < 1 guarantees 1-u > 0.
  return -mean * std::log(1.0 - u);
}

double Random::weibull(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument("weibull: shape and scale must be > 0");
  }
  const double u = uniform();
  return scale * std::pow(-std::log(1.0 - u), 1.0 / shape);
}

double Random::pareto(double alpha, double xm) {
  if (alpha <= 0.0 || xm <= 0.0) {
    throw std::invalid_argument("pareto: alpha and xm must be > 0");
  }
  const double u = uniform();
  return xm / std::pow(1.0 - u, 1.0 / alpha);
}

double Random::normal(double mean, double stddev) {
  // Box-Muller without caching the second variate (keeps state minimal and
  // split()-safe).
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double Random::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

Random Random::split() {
  Random child = *this;
  child.gen_.jump();
  // Also advance the parent so subsequent splits differ.
  gen_.next();
  return child;
}

}  // namespace oddci::util

#pragma once

#include <functional>
#include <memory>
#include <string>

#include "broadcast/carousel.hpp"
#include "sim/simulation.hpp"

/// Xlet application model (JavaTV-style), as used by MHP/ACAP/Ginga.
///
/// The lifecycle follows Figure 4 of the paper:
///
///     Loaded --initXlet--> Paused --startXlet--> Started
///     Started --pauseXlet--> Paused --startXlet--> Started ...
///     any --destroyXlet--> Destroyed (terminal)
///
/// Transitions are driven exclusively by the ApplicationManager; an Xlet
/// never changes its own state field.
namespace oddci::dtv {

class Receiver;  // forward: the hosting set-top box

enum class XletState { kLoaded, kPaused, kStarted, kDestroyed };

[[nodiscard]] const char* to_string(XletState s);

/// Services the middleware exposes to a running Xlet. Mirrors the subset of
/// the JavaTV/DSM-CC APIs the PNA needs: simulated time, carousel file
/// access (with carousel-cycle latency), CPU execution, and the return
/// channel (provided by the Receiver).
class XletContext {
 public:
  explicit XletContext(Receiver& receiver) : receiver_(&receiver) {}

  [[nodiscard]] Receiver& receiver() { return *receiver_; }
  [[nodiscard]] sim::Simulation& simulation();

  /// What is currently on air on the tuned channel (nullptr when the
  /// receiver is unpowered or untuned). Lets an Xlet inspect signalling
  /// (names, versions, content ids) without paying a carousel read.
  [[nodiscard]] const broadcast::CarouselSnapshot* current_carousel() const;

  /// Asynchronously acquire a file from the tuned channel's carousel.
  /// The callback fires when the file has been fully received (respecting
  /// the carousel cycle), with `ok == false` if the file is not on air or
  /// the receiver is no longer tuned/powered.
  void read_carousel_file(
      const std::string& name,
      std::function<void(bool ok, broadcast::CarouselFile file)> on_done);

 private:
  Receiver* receiver_;
};

class Xlet {
 public:
  virtual ~Xlet() = default;

  /// Called once after loading; the Xlet may begin acquiring resources.
  virtual void init_xlet(XletContext& context) = 0;
  /// Enter the Started state: the Xlet provides its service.
  virtual void start_xlet() = 0;
  /// Enter the Paused state: release scarce resources.
  virtual void pause_xlet() = 0;
  /// Terminal: release everything. `unconditional` mirrors JavaTV: when
  /// true the Xlet may not refuse.
  virtual void destroy_xlet(bool unconditional) = 0;
};

/// Optional mixin for Xlets that track carousel updates (new generations of
/// the object carousel and AIT, e.g. fresh OddCI control messages). The
/// Receiver forwards acquired signalling to running Xlets implementing it.
class CarouselAware {
 public:
  virtual ~CarouselAware() = default;
  virtual void on_carousel_update(
      const broadcast::CarouselSnapshot& snapshot) = 0;
};

/// Factory used by the ApplicationManager to instantiate the class named in
/// the AIT once its code base has been read from the carousel. In a real
/// receiver this is the Java class loader; here the harness registers
/// factories keyed by application name.
using XletFactory = std::function<std::unique_ptr<Xlet>()>;

}  // namespace oddci::dtv

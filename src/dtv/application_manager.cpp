#include "dtv/application_manager.hpp"

#include <stdexcept>
#include <vector>

namespace oddci::dtv {

const char* to_string(XletState s) {
  switch (s) {
    case XletState::kLoaded:
      return "Loaded";
    case XletState::kPaused:
      return "Paused";
    case XletState::kStarted:
      return "Started";
    case XletState::kDestroyed:
      return "Destroyed";
  }
  return "?";
}

void ApplicationManager::register_factory(const std::string& application_name,
                                          XletFactory factory) {
  if (!factory) {
    throw std::invalid_argument("ApplicationManager: empty factory");
  }
  factories_[application_name] = std::move(factory);
}

void ApplicationManager::process_ait(const broadcast::Ait& ait) {
  // Teardowns first so capacity frees before new launches.
  std::vector<std::uint32_t> to_destroy;
  for (const auto& entry : ait.entries()) {
    if (entry.control_code == broadcast::AppControlCode::kDestroy ||
        entry.control_code == broadcast::AppControlCode::kKill) {
      if (apps_.count(entry.application_id) > 0) {
        to_destroy.push_back(entry.application_id);
      }
    }
  }
  for (auto id : to_destroy) {
    destroy(id, /*unconditional=*/true);
  }
  for (const auto& entry : ait.autostart_entries()) {
    if (apps_.count(entry.application_id) == 0) {
      launch(entry.application_id, entry.application_name);
    }
  }
}

bool ApplicationManager::launch(std::uint32_t application_id,
                                const std::string& name) {
  if (apps_.count(application_id) > 0) return false;
  auto it = factories_.find(name);
  if (it == factories_.end()) return false;

  App app;
  app.name = name;
  app.xlet = it->second();
  if (!app.xlet) return false;
  app.context = std::make_unique<XletContext>(*receiver_);
  app.state = XletState::kLoaded;

  auto [slot, inserted] = apps_.emplace(application_id, std::move(app));
  (void)inserted;
  App& live = slot->second;
  // Loaded -> initXlet -> Paused -> startXlet -> Started, per Figure 4.
  live.xlet->init_xlet(*live.context);
  live.state = XletState::kPaused;
  live.xlet->start_xlet();
  live.state = XletState::kStarted;
  return true;
}

bool ApplicationManager::pause(std::uint32_t application_id) {
  auto it = apps_.find(application_id);
  if (it == apps_.end() || it->second.state != XletState::kStarted) {
    return false;
  }
  it->second.xlet->pause_xlet();
  it->second.state = XletState::kPaused;
  return true;
}

bool ApplicationManager::resume(std::uint32_t application_id) {
  auto it = apps_.find(application_id);
  if (it == apps_.end() || it->second.state != XletState::kPaused) {
    return false;
  }
  it->second.xlet->start_xlet();
  it->second.state = XletState::kStarted;
  return true;
}

bool ApplicationManager::destroy(std::uint32_t application_id,
                                 bool unconditional) {
  auto it = apps_.find(application_id);
  if (it == apps_.end()) return false;
  it->second.xlet->destroy_xlet(unconditional);
  it->second.state = XletState::kDestroyed;
  // A destroyed Xlet instance can never be restarted; drop it entirely.
  apps_.erase(it);
  return true;
}

void ApplicationManager::destroy_all() {
  // Collect ids first: destroy() mutates the map.
  std::vector<std::uint32_t> ids;
  ids.reserve(apps_.size());
  for (const auto& [id, app] : apps_) ids.push_back(id);
  for (auto id : ids) destroy(id, /*unconditional=*/true);
}

XletState ApplicationManager::state(std::uint32_t application_id) const {
  auto it = apps_.find(application_id);
  if (it == apps_.end()) return XletState::kDestroyed;
  return it->second.state;
}

bool ApplicationManager::running(std::uint32_t application_id) const {
  return apps_.count(application_id) > 0;
}

Xlet* ApplicationManager::find(std::uint32_t application_id) {
  auto it = apps_.find(application_id);
  return it == apps_.end() ? nullptr : it->second.xlet.get();
}

void ApplicationManager::notify_carousel(
    const broadcast::CarouselSnapshot& snapshot) {
  // Collect first: a callback may launch/destroy apps and mutate the map.
  std::vector<Xlet*> aware;
  for (auto& [id, app] : apps_) {
    if (app.state == XletState::kStarted) {
      aware.push_back(app.xlet.get());
    }
  }
  for (Xlet* xlet : aware) {
    if (auto* c = dynamic_cast<CarouselAware*>(xlet)) {
      c->on_carousel_update(snapshot);
    }
  }
}

}  // namespace oddci::dtv

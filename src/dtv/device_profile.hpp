#pragma once

#include <string>

#include "util/quantity.hpp"

/// Device capability profiles.
///
/// The paper's micro-benchmarks (Section 4.4) compared an
/// STMicroelectronics ST7109-based set-top box against a reference PC
/// (Pentium Dual Core 1.6 GHz): the STB *in use* (TV channel tuned, the
/// middleware competing for the CPU) averaged 20.6x slower than the PC, and
/// standby mode ran 1.65x faster than in-use mode. We encode performance as
/// a throughput scale relative to the reference PC so the same executable
/// workload yields per-device execution times.
namespace oddci::dtv {

enum class PowerMode {
  kOff,      ///< switched off: unreachable, no processing
  kStandby,  ///< on, middleware inactive: full interactive CPU available
  kInUse,    ///< a TV channel is being watched: CPU shared with the UI
};

struct DeviceProfile {
  std::string name;
  /// Execution-time multiplier vs the reference PC when in standby.
  double standby_slowdown = 1.0;
  /// Additional multiplier applied on top when in use (>= 1).
  double in_use_penalty = 1.0;
  util::Bits ram = util::Bits::from_megabytes(256);
  util::Bits flash = util::Bits::from_megabytes(32);

  /// Total execution-time multiplier for a given power mode.
  /// kOff is invalid (the device cannot execute anything).
  [[nodiscard]] double slowdown(PowerMode mode) const;

  /// Reference PC: Pentium Dual Core 1.6 GHz, 1 GB RAM, Debian Linux.
  static DeviceProfile reference_pc();

  /// ST7109-based STB: 256 MB RAM, 32 MB flash. Calibrated so that in-use
  /// averages 20.6x the PC and standby is 1.65x faster than in-use,
  /// matching the paper's measured ratios.
  static DeviceProfile stb_st7109();

  /// A mobile-phone-class device (illustrative, for the examples).
  static DeviceProfile mobile_phone();

  /// The paper's performance model expresses task durations on a
  /// "reference set-top box"; this profile is that unit (slowdown 1.0),
  /// used by the Figure 6/7 reproductions.
  static DeviceProfile reference_stb();
};

[[nodiscard]] const char* to_string(PowerMode mode);

}  // namespace oddci::dtv

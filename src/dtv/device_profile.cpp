#include "dtv/device_profile.hpp"

#include <stdexcept>

namespace oddci::dtv {

double DeviceProfile::slowdown(PowerMode mode) const {
  switch (mode) {
    case PowerMode::kStandby:
      return standby_slowdown;
    case PowerMode::kInUse:
      return standby_slowdown * in_use_penalty;
    case PowerMode::kOff:
      throw std::logic_error("DeviceProfile: no slowdown for a device that is off");
  }
  throw std::logic_error("DeviceProfile: unknown power mode");
}

DeviceProfile DeviceProfile::reference_pc() {
  DeviceProfile p;
  p.name = "reference-pc";
  p.standby_slowdown = 1.0;
  p.in_use_penalty = 1.0;
  p.ram = util::Bits::from_megabytes(1024);
  p.flash = util::Bits::from_megabytes(0x7FFF);  // disk, effectively unbounded
  return p;
}

DeviceProfile DeviceProfile::stb_st7109() {
  DeviceProfile p;
  p.name = "stb-st7109";
  // Paper: STB in use = 20.6x PC; standby = in-use / 1.65.
  p.in_use_penalty = 1.65;
  p.standby_slowdown = 20.6 / 1.65;
  p.ram = util::Bits::from_megabytes(256);
  p.flash = util::Bits::from_megabytes(32);
  return p;
}

DeviceProfile DeviceProfile::mobile_phone() {
  DeviceProfile p;
  p.name = "mobile-phone";
  p.standby_slowdown = 8.0;
  p.in_use_penalty = 2.0;
  p.ram = util::Bits::from_megabytes(128);
  p.flash = util::Bits::from_megabytes(512);
  return p;
}

DeviceProfile DeviceProfile::reference_stb() {
  DeviceProfile p;
  p.name = "reference-stb";
  p.standby_slowdown = 1.0;
  p.in_use_penalty = 1.0;
  p.ram = util::Bits::from_megabytes(256);
  p.flash = util::Bits::from_megabytes(32);
  return p;
}

const char* to_string(PowerMode mode) {
  switch (mode) {
    case PowerMode::kOff:
      return "off";
    case PowerMode::kStandby:
      return "standby";
    case PowerMode::kInUse:
      return "in-use";
  }
  return "?";
}

}  // namespace oddci::dtv

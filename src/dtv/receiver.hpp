#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "broadcast/channel.hpp"
#include "dtv/application_manager.hpp"
#include "dtv/device_profile.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "obs/flight_recorder.hpp"
#include "sim/sharded.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

/// A DTV receiver (set-top box): tuner + middleware + interactive-apps
/// processor + return channel.
///
/// The receiver is the host environment for the PNA Xlet. It:
///  * tunes a broadcast medium (DTV channel, multicast group) and forwards
///    acquired AITs to its
///    ApplicationManager (AUTOSTART apps launch after their code base has
///    been read from the carousel);
///  * models the dedicated interactive-application processor as a FIFO
///    resource whose speed depends on the device profile and power mode;
///  * owns the direct (return) channel endpoint used by Xlets to talk to
///    the Controller and Backend.
namespace oddci::dtv {

class Receiver final : public broadcast::BroadcastListener,
                       public net::Endpoint {
 public:
  Receiver(sim::Simulation& simulation, net::Network& network,
           DeviceProfile profile, net::LinkSpec link);
  ~Receiver() override;

  Receiver(const Receiver&) = delete;
  Receiver& operator=(const Receiver&) = delete;

  // --- identity / capabilities -------------------------------------------
  [[nodiscard]] const DeviceProfile& profile() const { return profile_; }
  [[nodiscard]] net::NodeId node_id() const { return node_id_; }
  [[nodiscard]] sim::Simulation& simulation() { return simulation_; }
  [[nodiscard]] ApplicationManager& application_manager() { return apps_; }

  /// Attach a flight recorder: power-mode changes and tuner changes are
  /// emitted as receiver-track events (the physical causes behind member
  /// churn). nullptr detaches.
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  // --- sharded kernel -------------------------------------------------------
  /// Place this receiver on kernel shard `shard`. `stable_listener_id` is
  /// its channel listener id for life (so cross-shard re-tunes after power
  /// cycles stay deterministic); `loss_rng` is the shard's section-loss
  /// stream (shared by the shard's receivers, drawn in event order). The
  /// receiver's `simulation` reference must already be the shard's kernel.
  /// With a single shard this is a no-op configuration.
  void set_shard_context(sim::ShardedSimulation* sharded, std::uint32_t shard,
                         broadcast::ListenerId stable_listener_id,
                         util::Random* loss_rng);

  /// Construction is single-threaded: until this is called, tuner changes
  /// reach the channel directly. Call once the population is built (before
  /// the first run); from then on, receivers on non-control shards post
  /// tune/untune through the kernel mailbox.
  void activate_shard_routing() { shard_routing_live_ = true; }

  [[nodiscard]] std::uint32_t shard() const { return shard_; }

  /// The carousel view this receiver acts on: the live channel snapshot in
  /// the classic kernel, the retained signalling capsule under sharding.
  [[nodiscard]] const broadcast::CarouselSnapshot* current_carousel() const;

  // --- power --------------------------------------------------------------
  [[nodiscard]] PowerMode power_mode() const { return power_; }
  /// Switching off destroys all Xlets, cancels executions and detaches the
  /// return channel. Switching on re-attaches; if a channel was tuned it is
  /// re-acquired (signalling will be re-delivered by the carousel).
  void set_power_mode(PowerMode mode);
  [[nodiscard]] bool powered() const { return power_ != PowerMode::kOff; }

  // --- tuner ----------------------------------------------------------------
  /// Tune to `channel` (replacing any previous channel; running broadcast
  /// apps are destroyed, as a real channel change does).
  void tune(broadcast::BroadcastMedium& channel);
  void untune();
  [[nodiscard]] broadcast::BroadcastMedium* tuned_channel() {
    return channel_;
  }

  // --- interactive-apps processor ------------------------------------------
  using ExecToken = std::uint64_t;
  /// Run a job that takes `reference_seconds` on the reference PC. The
  /// actual duration is scaled by the profile slowdown for the *current*
  /// power mode and serialized FIFO after previously submitted jobs.
  /// Returns a token usable with `cancel_execution`.
  ExecToken execute(double reference_seconds, std::function<void()> on_done);
  bool cancel_execution(ExecToken token);
  /// Local duration a job of `reference_seconds` takes right now.
  [[nodiscard]] double scaled_seconds(double reference_seconds) const;

  // --- carousel access (used by XletContext) --------------------------------
  void read_carousel_file(
      const std::string& name,
      std::function<void(bool ok, broadcast::CarouselFile file)> on_done);

  // --- return channel --------------------------------------------------------
  using MessageHandler =
      std::function<void(net::NodeId from, const net::MessagePtr&)>;
  /// Xlets install a handler to receive direct-channel messages.
  void set_message_handler(MessageHandler handler);
  void clear_message_handler();
  /// Send on the return channel; silently dropped if powered off.
  void send(net::NodeId to, net::MessagePtr message);

  // --- BroadcastListener ------------------------------------------------------
  void on_signalling(const broadcast::Ait& ait,
                     const broadcast::CarouselSnapshot& snapshot) override;
  void on_signalling_capsule(
      const std::shared_ptr<const broadcast::SignallingCapsule>& capsule)
      override;

  // --- net::Endpoint ----------------------------------------------------------
  void on_message(net::NodeId from, const net::MessagePtr& message) override;

 private:
  /// Bumped whenever in-flight async work must be invalidated (power off,
  /// channel change).
  std::uint64_t session_ = 0;

  void autostart_from_ait(const broadcast::Ait& ait);

  [[nodiscard]] bool sharded_mode() const {
    return sharded_ != nullptr && sharded_->shard_count() > 1;
  }
  /// Tuner mutations under sharding: direct while single-threaded (or on
  /// the control shard), mailbox-posted from worker shards.
  void channel_tune();
  void channel_untune();
  void sharded_read_carousel_file(
      const std::string& name,
      std::function<void(bool ok, broadcast::CarouselFile file)> on_done);

  sim::Simulation& simulation_;
  net::Network& network_;
  DeviceProfile profile_;
  net::NodeId node_id_ = net::kInvalidNode;
  PowerMode power_ = PowerMode::kStandby;

  broadcast::BroadcastMedium* channel_ = nullptr;
  broadcast::ListenerId listener_id_ = 0;

  ApplicationManager apps_;
  MessageHandler handler_;

  sim::SimTime cpu_free_at_;
  ExecToken next_token_ = 1;
  std::unordered_map<ExecToken, sim::EventId> running_;
  obs::FlightRecorder* recorder_ = nullptr;

  sim::ShardedSimulation* sharded_ = nullptr;
  std::uint32_t shard_ = 0;
  broadcast::ListenerId stable_listener_id_ = 0;
  util::Random* loss_rng_ = nullptr;
  bool shard_routing_live_ = false;
  /// Latest signalling capsule (sharded kernel): the receiver's own frozen
  /// view of what is on air, used for carousel reads and version checks.
  std::shared_ptr<const broadcast::SignallingCapsule> capsule_;
};

}  // namespace oddci::dtv

#include "dtv/receiver.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace oddci::dtv {

sim::Simulation& XletContext::simulation() { return receiver_->simulation(); }

const broadcast::CarouselSnapshot* XletContext::current_carousel() const {
  if (!receiver_->powered()) return nullptr;
  const broadcast::BroadcastMedium* channel = receiver_->tuned_channel();
  return channel != nullptr ? &channel->current() : nullptr;
}

void XletContext::read_carousel_file(
    const std::string& name,
    std::function<void(bool, broadcast::CarouselFile)> on_done) {
  receiver_->read_carousel_file(name, std::move(on_done));
}

Receiver::Receiver(sim::Simulation& simulation, net::Network& network,
                   DeviceProfile profile, net::LinkSpec link)
    : simulation_(simulation),
      network_(network),
      profile_(std::move(profile)),
      apps_(*this),
      cpu_free_at_(simulation.now()) {
  node_id_ = network_.register_endpoint(this, link);
}

Receiver::~Receiver() {
  if (channel_ != nullptr) {
    channel_->untune(listener_id_);
  }
  if (node_id_ != net::kInvalidNode && network_.attached(node_id_)) {
    network_.unregister_endpoint(node_id_);
  }
}

void Receiver::set_power_mode(PowerMode mode) {
  if (mode == power_) return;
  const PowerMode previous = power_;
  power_ = mode;
  if (recorder_ != nullptr) {
    recorder_->emit(simulation_.now(), obs::TraceEventKind::kPowerChange,
                    obs::TraceComponent::kReceiver, {}, node_id_,
                    static_cast<std::uint64_t>(mode));
  }

  if (mode == PowerMode::kOff) {
    ++session_;
    apps_.destroy_all();
    for (auto& [token, event] : running_) {
      simulation_.cancel(event);
    }
    running_.clear();
    cpu_free_at_ = simulation_.now();
    handler_ = nullptr;
    if (channel_ != nullptr) {
      channel_->untune(listener_id_);
      listener_id_ = 0;
    }
    network_.unregister_endpoint(node_id_);
    return;
  }

  if (previous == PowerMode::kOff) {
    // Coming back: re-attach the return channel and re-acquire signalling.
    network_.reattach_endpoint(node_id_, this);
    cpu_free_at_ = simulation_.now();
    if (channel_ != nullptr) {
      listener_id_ = channel_->tune(this);
    }
  }
  // Standby <-> in-use transitions only change the slowdown of *future*
  // dispatches; jobs already running keep their speed (documented).
}

void Receiver::tune(broadcast::BroadcastMedium& channel) {
  if (channel_ == &channel) return;
  if (channel_ != nullptr) {
    untune();
  }
  channel_ = &channel;
  if (recorder_ != nullptr) {
    recorder_->emit(simulation_.now(), obs::TraceEventKind::kTuned,
                    obs::TraceComponent::kReceiver, {}, node_id_, 1);
  }
  if (powered()) {
    ++session_;  // invalidate carousel reads from the previous channel
    listener_id_ = channel_->tune(this);
  }
}

void Receiver::untune() {
  if (channel_ == nullptr) return;
  if (recorder_ != nullptr) {
    recorder_->emit(simulation_.now(), obs::TraceEventKind::kTuned,
                    obs::TraceComponent::kReceiver, {}, node_id_, 0);
  }
  ++session_;
  apps_.destroy_all();  // a channel change kills broadcast applications
  if (powered()) {
    channel_->untune(listener_id_);
  }
  channel_ = nullptr;
  listener_id_ = 0;
}

double Receiver::scaled_seconds(double reference_seconds) const {
  if (!powered()) {
    throw std::logic_error("Receiver: cannot execute while powered off");
  }
  return reference_seconds * profile_.slowdown(power_);
}

Receiver::ExecToken Receiver::execute(double reference_seconds,
                                      std::function<void()> on_done) {
  if (reference_seconds < 0.0) {
    throw std::invalid_argument("Receiver: negative execution time");
  }
  if (!on_done) {
    throw std::invalid_argument("Receiver: empty completion callback");
  }
  const double local = scaled_seconds(reference_seconds);
  const sim::SimTime begin = std::max(simulation_.now(), cpu_free_at_);
  const sim::SimTime done = begin + sim::SimTime::from_seconds(local);
  cpu_free_at_ = done;

  const ExecToken token = next_token_++;
  const sim::EventId event = simulation_.schedule_at(
      done, [this, token, cb = std::move(on_done)] {
        running_.erase(token);
        cb();
      });
  running_.emplace(token, event);
  return token;
}

bool Receiver::cancel_execution(ExecToken token) {
  auto it = running_.find(token);
  if (it == running_.end()) return false;
  simulation_.cancel(it->second);
  running_.erase(it);
  // Note: the FIFO reservation is not reclaimed; a real STB would also not
  // compact its schedule instantaneously.
  return true;
}

void Receiver::read_carousel_file(
    const std::string& name,
    std::function<void(bool, broadcast::CarouselFile)> on_done) {
  if (!on_done) {
    throw std::invalid_argument("Receiver: empty carousel callback");
  }
  if (!powered() || channel_ == nullptr) {
    on_done(false, broadcast::CarouselFile{});
    return;
  }
  const auto ready = channel_->file_ready_at(name, simulation_.now());
  if (!ready) {
    on_done(false, broadcast::CarouselFile{});
    return;
  }
  const broadcast::CarouselFile file = *channel_->current().find(name);
  const std::uint64_t session = session_;
  simulation_.schedule_at(
      *ready, [this, session, file, cb = std::move(on_done)] {
        // Invalidated by power-off/channel change. A new carousel
        // generation does NOT abort the read as long as the module itself
        // is unchanged (same name/version/content): real DSM-CC receivers
        // keep assembling a module across unrelated carousel updates and
        // only restart on a module-version bump.
        if (session_ != session || channel_ == nullptr) {
          cb(false, broadcast::CarouselFile{});
          return;
        }
        const broadcast::CarouselFile* now_on_air =
            channel_->current().find(file.name);
        if (now_on_air == nullptr || now_on_air->version != file.version ||
            now_on_air->content_id != file.content_id) {
          cb(false, broadcast::CarouselFile{});
          return;
        }
        cb(true, file);
      });
}

void Receiver::set_message_handler(MessageHandler handler) {
  handler_ = std::move(handler);
}

void Receiver::clear_message_handler() { handler_ = nullptr; }

void Receiver::send(net::NodeId to, net::MessagePtr message) {
  if (!powered()) return;
  network_.send(node_id_, to, std::move(message));
}

void Receiver::on_signalling(const broadcast::Ait& ait,
                             const broadcast::CarouselSnapshot& snapshot) {
  if (!powered()) return;
  autostart_from_ait(ait);
  // DESTROY/KILL codes are processed immediately.
  apps_.process_ait(ait);
  // Already-running trigger applications observe the fresh carousel.
  apps_.notify_carousel(snapshot);
}

void Receiver::autostart_from_ait(const broadcast::Ait& ait) {
  for (const auto& entry : ait.autostart_entries()) {
    if (apps_.running(entry.application_id)) continue;
    if (entry.base_file.empty()) {
      apps_.launch(entry.application_id, entry.application_name);
      continue;
    }
    // The trigger application's code base must first be read from the
    // carousel (this is what spreads PNA launch times across receivers).
    read_carousel_file(
        entry.base_file,
        [this, entry](bool ok, const broadcast::CarouselFile&) {
          if (!ok) return;
          if (!apps_.running(entry.application_id)) {
            apps_.launch(entry.application_id, entry.application_name);
          }
        });
  }
}

void Receiver::on_message(net::NodeId from, const net::MessagePtr& message) {
  if (!powered()) return;
  if (handler_) {
    handler_(from, message);
  }
}

}  // namespace oddci::dtv

#include "dtv/receiver.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace oddci::dtv {

sim::Simulation& XletContext::simulation() { return receiver_->simulation(); }

const broadcast::CarouselSnapshot* XletContext::current_carousel() const {
  return receiver_->current_carousel();
}

void XletContext::read_carousel_file(
    const std::string& name,
    std::function<void(bool, broadcast::CarouselFile)> on_done) {
  receiver_->read_carousel_file(name, std::move(on_done));
}

Receiver::Receiver(sim::Simulation& simulation, net::Network& network,
                   DeviceProfile profile, net::LinkSpec link)
    : simulation_(simulation),
      network_(network),
      profile_(std::move(profile)),
      apps_(*this),
      cpu_free_at_(simulation.now()) {
  node_id_ = network_.register_endpoint(this, link);
}

Receiver::~Receiver() {
  // Teardown is single-threaded (the kernel has stopped); talk to the
  // channel directly regardless of shard routing.
  if (channel_ != nullptr) {
    channel_->untune(listener_id_);
  }
  if (node_id_ != net::kInvalidNode && network_.attached(node_id_)) {
    network_.unregister_endpoint(node_id_);
  }
}

void Receiver::set_shard_context(sim::ShardedSimulation* sharded,
                                 std::uint32_t shard,
                                 broadcast::ListenerId stable_listener_id,
                                 util::Random* loss_rng) {
  if (sharded != nullptr && sharded->shard_count() > 1 &&
      (stable_listener_id == 0 || loss_rng == nullptr)) {
    throw std::invalid_argument(
        "Receiver: sharded context needs a stable listener id and loss rng");
  }
  sharded_ = sharded;
  shard_ = shard;
  stable_listener_id_ = stable_listener_id;
  loss_rng_ = loss_rng;
}

const broadcast::CarouselSnapshot* Receiver::current_carousel() const {
  if (!powered() || channel_ == nullptr) return nullptr;
  if (sharded_mode()) {
    // Never dereference the live channel from a worker shard: act on the
    // retained capsule (null until the first signalling delivery).
    return capsule_ != nullptr ? &capsule_->snapshot : nullptr;
  }
  return &channel_->current();
}

void Receiver::channel_tune() {
  if (!sharded_mode()) {
    listener_id_ = channel_->tune(this);
    return;
  }
  listener_id_ = stable_listener_id_;
  if (shard_ == 0 || !shard_routing_live_) {
    channel_->tune_with_id(stable_listener_id_, this, shard_);
    return;
  }
  // The channel lives on the control shard; mailbox FIFO order keeps
  // tune/untune sequences from one receiver in program order.
  sharded_->post(shard_, 0, simulation_.now(), [this, channel = channel_] {
    channel->tune_with_id(stable_listener_id_, this, shard_);
  });
}

void Receiver::channel_untune() {
  if (!sharded_mode()) {
    channel_->untune(listener_id_);
    return;
  }
  if (shard_ == 0 || !shard_routing_live_) {
    channel_->untune(stable_listener_id_);
    return;
  }
  sharded_->post(shard_, 0, simulation_.now(),
                 [channel = channel_, id = stable_listener_id_] {
                   channel->untune(id);
                 });
}

void Receiver::set_power_mode(PowerMode mode) {
  if (mode == power_) return;
  const PowerMode previous = power_;
  power_ = mode;
  if (recorder_ != nullptr) {
    recorder_->emit(simulation_.now(), obs::TraceEventKind::kPowerChange,
                    obs::TraceComponent::kReceiver, {}, node_id_,
                    static_cast<std::uint64_t>(mode));
  }

  if (mode == PowerMode::kOff) {
    ++session_;
    apps_.destroy_all();
    for (auto& [token, event] : running_) {
      simulation_.cancel(event);
    }
    running_.clear();
    cpu_free_at_ = simulation_.now();
    handler_ = nullptr;
    capsule_.reset();
    if (channel_ != nullptr) {
      channel_untune();
      listener_id_ = 0;
    }
    network_.unregister_endpoint(node_id_);
    return;
  }

  if (previous == PowerMode::kOff) {
    // Coming back: re-attach the return channel and re-acquire signalling.
    network_.reattach_endpoint(node_id_, this);
    cpu_free_at_ = simulation_.now();
    if (channel_ != nullptr) {
      channel_tune();
    }
  }
  // Standby <-> in-use transitions only change the slowdown of *future*
  // dispatches; jobs already running keep their speed (documented).
}

void Receiver::tune(broadcast::BroadcastMedium& channel) {
  if (channel_ == &channel) return;
  if (channel_ != nullptr) {
    untune();
  }
  channel_ = &channel;
  if (recorder_ != nullptr) {
    recorder_->emit(simulation_.now(), obs::TraceEventKind::kTuned,
                    obs::TraceComponent::kReceiver, {}, node_id_, 1);
  }
  if (powered()) {
    ++session_;  // invalidate carousel reads from the previous channel
    channel_tune();
  }
}

void Receiver::untune() {
  if (channel_ == nullptr) return;
  if (recorder_ != nullptr) {
    recorder_->emit(simulation_.now(), obs::TraceEventKind::kTuned,
                    obs::TraceComponent::kReceiver, {}, node_id_, 0);
  }
  ++session_;
  apps_.destroy_all();  // a channel change kills broadcast applications
  if (powered()) {
    channel_untune();
  }
  channel_ = nullptr;
  listener_id_ = 0;
  capsule_.reset();
}

double Receiver::scaled_seconds(double reference_seconds) const {
  if (!powered()) {
    throw std::logic_error("Receiver: cannot execute while powered off");
  }
  return reference_seconds * profile_.slowdown(power_);
}

Receiver::ExecToken Receiver::execute(double reference_seconds,
                                      std::function<void()> on_done) {
  if (reference_seconds < 0.0) {
    throw std::invalid_argument("Receiver: negative execution time");
  }
  if (!on_done) {
    throw std::invalid_argument("Receiver: empty completion callback");
  }
  const double local = scaled_seconds(reference_seconds);
  const sim::SimTime begin = std::max(simulation_.now(), cpu_free_at_);
  const sim::SimTime done = begin + sim::SimTime::from_seconds(local);
  cpu_free_at_ = done;

  const ExecToken token = next_token_++;
  const sim::EventId event = simulation_.schedule_at(
      done, [this, token, cb = std::move(on_done)] {
        running_.erase(token);
        cb();
      });
  running_.emplace(token, event);
  return token;
}

bool Receiver::cancel_execution(ExecToken token) {
  auto it = running_.find(token);
  if (it == running_.end()) return false;
  simulation_.cancel(it->second);
  running_.erase(it);
  // Note: the FIFO reservation is not reclaimed; a real STB would also not
  // compact its schedule instantaneously.
  return true;
}

void Receiver::read_carousel_file(
    const std::string& name,
    std::function<void(bool, broadcast::CarouselFile)> on_done) {
  if (!on_done) {
    throw std::invalid_argument("Receiver: empty carousel callback");
  }
  if (!powered() || channel_ == nullptr) {
    on_done(false, broadcast::CarouselFile{});
    return;
  }
  if (sharded_mode()) {
    sharded_read_carousel_file(name, std::move(on_done));
    return;
  }
  const auto ready = channel_->file_ready_at(name, simulation_.now());
  if (!ready) {
    on_done(false, broadcast::CarouselFile{});
    return;
  }
  const broadcast::CarouselFile file = *channel_->current().find(name);
  const std::uint64_t session = session_;
  simulation_.schedule_at(
      *ready, [this, session, file, cb = std::move(on_done)] {
        // Invalidated by power-off/channel change. A new carousel
        // generation does NOT abort the read as long as the module itself
        // is unchanged (same name/version/content): real DSM-CC receivers
        // keep assembling a module across unrelated carousel updates and
        // only restart on a module-version bump.
        if (session_ != session || channel_ == nullptr) {
          cb(false, broadcast::CarouselFile{});
          return;
        }
        const broadcast::CarouselFile* now_on_air =
            channel_->current().find(file.name);
        if (now_on_air == nullptr || now_on_air->version != file.version ||
            now_on_air->content_id != file.content_id) {
          cb(false, broadcast::CarouselFile{});
          return;
        }
        cb(true, file);
      });
}

void Receiver::sharded_read_carousel_file(
    const std::string& name,
    std::function<void(bool, broadcast::CarouselFile)> on_done) {
  // Sharded kernel: compute acquisition entirely from the retained capsule
  // — the live channel belongs to the control shard. Section-loss extra
  // cycles draw from this shard's loss stream, keeping each shard's RNG
  // consumption independent of the others.
  if (capsule_ == nullptr) {
    on_done(false, broadcast::CarouselFile{});
    return;
  }
  const auto capsule = capsule_;
  const broadcast::CarouselSnapshot& snapshot = capsule->snapshot;
  auto ready = snapshot.read_completion_time(name, simulation_.now());
  if (!ready) {
    on_done(false, broadcast::CarouselFile{});
    return;
  }
  const broadcast::CarouselFile file = *snapshot.find(name);
  if (capsule->section_loss > 0.0) {
    const double extra = broadcast::section_loss_extra_cycles(
        file, capsule->section_loss, capsule->section_size,
        loss_rng_->uniform());
    *ready += sim::SimTime::from_seconds(extra * snapshot.cycle_seconds());
  }
  const std::uint64_t session = session_;
  simulation_.schedule_at(
      *ready, [this, session, file, cb = std::move(on_done)] {
        if (session_ != session || channel_ == nullptr ||
            capsule_ == nullptr) {
          cb(false, broadcast::CarouselFile{});
          return;
        }
        // Same module-identity check as the classic path, against whatever
        // signalling this receiver has acquired by now.
        const broadcast::CarouselFile* now_on_air =
            capsule_->snapshot.find(file.name);
        if (now_on_air == nullptr || now_on_air->version != file.version ||
            now_on_air->content_id != file.content_id) {
          cb(false, broadcast::CarouselFile{});
          return;
        }
        cb(true, file);
      });
}

void Receiver::set_message_handler(MessageHandler handler) {
  handler_ = std::move(handler);
}

void Receiver::clear_message_handler() { handler_ = nullptr; }

void Receiver::send(net::NodeId to, net::MessagePtr message) {
  if (!powered()) return;
  network_.send(node_id_, to, std::move(message));
}

void Receiver::on_signalling(const broadcast::Ait& ait,
                             const broadcast::CarouselSnapshot& snapshot) {
  if (!powered()) return;
  autostart_from_ait(ait);
  // DESTROY/KILL codes are processed immediately.
  apps_.process_ait(ait);
  // Already-running trigger applications observe the fresh carousel.
  apps_.notify_carousel(snapshot);
}

void Receiver::on_signalling_capsule(
    const std::shared_ptr<const broadcast::SignallingCapsule>& capsule) {
  // Cross-shard deliveries can lag a power-off or channel change by up to
  // one window; drop them instead of resurrecting state.
  if (!powered() || channel_ == nullptr) return;
  capsule_ = capsule;
  autostart_from_ait(capsule->ait);
  apps_.process_ait(capsule->ait);
  apps_.notify_carousel(capsule->snapshot);
}

void Receiver::autostart_from_ait(const broadcast::Ait& ait) {
  for (const auto& entry : ait.autostart_entries()) {
    if (apps_.running(entry.application_id)) continue;
    if (entry.base_file.empty()) {
      apps_.launch(entry.application_id, entry.application_name);
      continue;
    }
    // The trigger application's code base must first be read from the
    // carousel (this is what spreads PNA launch times across receivers).
    read_carousel_file(
        entry.base_file,
        [this, entry](bool ok, const broadcast::CarouselFile&) {
          if (!ok) return;
          if (!apps_.running(entry.application_id)) {
            apps_.launch(entry.application_id, entry.application_name);
          }
        });
  }
}

void Receiver::on_message(net::NodeId from, const net::MessagePtr& message) {
  if (!powered()) return;
  if (handler_) {
    handler_(from, message);
  }
}

}  // namespace oddci::dtv

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "broadcast/ait.hpp"
#include "dtv/xlet.hpp"

/// The middleware's application manager: tracks running Xlets, enforces the
/// legal lifecycle transitions, and reacts to AIT updates (AUTOSTART
/// launches, DESTROY/KILL teardowns).
namespace oddci::dtv {

class Receiver;

class ApplicationManager {
 public:
  explicit ApplicationManager(Receiver& receiver) : receiver_(&receiver) {}

  ApplicationManager(const ApplicationManager&) = delete;
  ApplicationManager& operator=(const ApplicationManager&) = delete;

  /// Register the code for an application name (stands in for the class
  /// loader resolving the AIT's base file from the carousel).
  void register_factory(const std::string& application_name,
                        XletFactory factory);

  /// Process a (new version of the) AIT: autostart trigger applications
  /// that are not yet running, destroy applications signalled
  /// DESTROY/KILL. Called by the Receiver when signalling is acquired.
  void process_ait(const broadcast::Ait& ait);

  /// Explicit lifecycle controls (also used by tests).
  /// Launch = load + initXlet + startXlet. Returns false if no factory is
  /// registered or the app is already running.
  bool launch(std::uint32_t application_id, const std::string& name);
  bool pause(std::uint32_t application_id);
  bool resume(std::uint32_t application_id);
  bool destroy(std::uint32_t application_id, bool unconditional = true);

  /// Destroy every running Xlet (receiver switched off / channel change).
  void destroy_all();

  [[nodiscard]] XletState state(std::uint32_t application_id) const;
  [[nodiscard]] bool running(std::uint32_t application_id) const;
  [[nodiscard]] std::size_t active_count() const { return apps_.size(); }

  /// Access a live Xlet instance (tests/harness); nullptr if absent.
  [[nodiscard]] Xlet* find(std::uint32_t application_id);

  /// Forward a carousel update to running CarouselAware Xlets.
  void notify_carousel(const broadcast::CarouselSnapshot& snapshot);

 private:
  struct App {
    std::unique_ptr<Xlet> xlet;
    std::unique_ptr<XletContext> context;
    XletState state = XletState::kLoaded;
    std::string name;
  };

  Receiver* receiver_;
  std::map<std::string, XletFactory> factories_;
  std::map<std::uint32_t, App> apps_;
};

}  // namespace oddci::dtv

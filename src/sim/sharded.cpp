#include "sim/sharded.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/profiler.hpp"  // header-only recording; no link dependency

namespace oddci::sim {

void ShardedSimulation::Options::validate() const {
  if (shards == 0) {
    throw std::invalid_argument("ShardedSimulation: need at least one shard");
  }
  if (shards > 1 && window <= SimTime::zero()) {
    throw std::invalid_argument(
        "ShardedSimulation: window must be positive with multiple shards");
  }
}

ShardedSimulation::ShardedSimulation(Options options)
    : options_(options) {
  options_.validate();
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Simulation>());
  }
  const std::size_t k = options_.shards;
  boxes_ = std::vector<MailBox>(k * k);
  global_boxes_ = std::vector<MailBox>(k);
  if (k > 1) {
    worker_errors_.resize(k, nullptr);
    workers_.reserve(k - 1);
    for (std::size_t i = 1; i < k; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }
}

ShardedSimulation::~ShardedSimulation() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
    ++epoch_;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ShardedSimulation::post(std::size_t src, std::size_t dst, SimTime at,
                             EventFn fn, EventPriority priority) {
  if (src >= shards_.size() || dst >= shards_.size()) {
    throw std::out_of_range("ShardedSimulation: shard index out of range");
  }
  if (!fn) {
    throw std::invalid_argument("ShardedSimulation: empty mail callback");
  }
  if (shards_.size() == 1) {
    Simulation& s = *shards_[0];
    s.schedule_at(std::max(at, s.now()), std::move(fn), priority);
    return;
  }
  box(src, dst).items.push_back(Mail{at, std::move(fn), priority});
}

void ShardedSimulation::post_global(std::size_t src, SimTime at, EventFn fn) {
  if (src >= shards_.size()) {
    throw std::out_of_range("ShardedSimulation: shard index out of range");
  }
  if (!fn) {
    throw std::invalid_argument("ShardedSimulation: empty global callback");
  }
  if (shards_.size() == 1) {
    Simulation& s = *shards_[0];
    s.schedule_at(std::max(at, s.now()), std::move(fn),
                  EventPriority::kMonitor);
    return;
  }
  global_boxes_[src].items.push_back(
      Mail{at, std::move(fn), EventPriority::kMonitor});
}

void ShardedSimulation::set_profiler(obs::KernelProfiler* profiler) {
  if (profiler != nullptr && profiler->shard_count() != shards_.size()) {
    throw std::invalid_argument(
        "ShardedSimulation: profiler shard count mismatch");
  }
  profiler_ = profiler;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->set_profiler(profiler, static_cast<std::uint32_t>(i));
  }
}

void ShardedSimulation::set_progress(std::function<void()> fn,
                                     SimTime stride) {
  if (fn && stride <= SimTime::zero()) {
    throw std::invalid_argument(
        "ShardedSimulation: progress stride must be positive");
  }
  progress_ = std::move(fn);
  progress_stride_ = stride;
}

void ShardedSimulation::worker_loop(std::size_t shard_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    SimTime target;
    bool inclusive;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [&] { return epoch_ != seen_epoch || shutdown_; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      target = target_;
      inclusive = inclusive_;
    }
    try {
      if (inclusive) {
        shards_[shard_index]->run_until(target);
      } else {
        shards_[shard_index]->run_window(target);
      }
    } catch (...) {
      worker_errors_[shard_index] = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--outstanding_ == 0) work_done_.notify_one();
    }
  }
}

void ShardedSimulation::parallel_window(SimTime w1, bool inclusive) {
  const std::uint64_t span_start =
      profiler_ != nullptr ? obs::KernelProfiler::now_nanos() : 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    target_ = w1;
    inclusive_ = inclusive;
    outstanding_ = shards_.size() - 1;
    ++epoch_;
  }
  work_ready_.notify_all();
  try {
    if (inclusive) {
      shards_[0]->run_until(w1);
    } else {
      shards_[0]->run_window(w1);
    }
  } catch (...) {
    worker_errors_[0] = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    work_done_.wait(lock, [&] { return outstanding_ == 0; });
  }
  if (profiler_ != nullptr) {
    // Every worker is parked (the barrier mutex published their execute
    // cells); charge each shard's idle remainder to barrier stall.
    profiler_->on_window(obs::KernelProfiler::now_nanos() - span_start);
  }
  ++windows_run_;
  for (auto& error : worker_errors_) {
    if (error != nullptr) {
      std::exception_ptr e = std::exchange(error, nullptr);
      std::rethrow_exception(e);
    }
  }
}

bool ShardedSimulation::drain(SimTime boundary) {
  const std::size_t k = shards_.size();
  bool delivered_due = false;
  const bool prof = profiler_ != nullptr;
  const std::uint64_t drain_start =
      prof ? obs::KernelProfiler::now_nanos() : 0;
  std::uint64_t mail_items = 0;
  std::uint64_t global_nanos = 0;
  std::uint64_t global_tasks = 0;
  // Fixpoint: a global task (sampler tick, fault plan step, deferred
  // removal) may itself post mail or further globals; keep draining until
  // one pass moves nothing. Ordering stays deterministic because each pass
  // walks sources in index order and every queue preserves send order.
  for (;;) {
    bool moved = false;
    // Mail first: (destination, source, sequence). The destination loop
    // order is immaterial (separate heaps); per destination, source index
    // then send order fixes the heap insertion sequence — and therefore
    // the same-timestamp tie-break — deterministically.
    for (std::size_t dst = 0; dst < k; ++dst) {
      Simulation& target = *shards_[dst];
      for (std::size_t src = 0; src < k; ++src) {
        auto& items = box(src, dst).items;
        mail_items += items.size();
        for (auto& mail : items) {
          SimTime at = mail.at;
          if (at < boundary) {
            at = boundary;
            ++clamped_posts_;
          }
          if (at <= boundary) delivered_due = true;
          target.schedule_at(at, std::move(mail.fn), mail.priority);
          ++cross_posts_;
          moved = true;
        }
        items.clear();
      }
    }
    // Stage global tasks in (source, send order), stamped with a global
    // sequence so later drains never reorder earlier arrivals.
    for (std::size_t src = 0; src < k; ++src) {
      auto& items = global_boxes_[src].items;
      for (auto& mail : items) {
        globals_.push_back(GlobalTask{mail.at, global_seq_++, std::move(mail.fn)});
        moved = true;
      }
      items.clear();
    }
    // Run every global task due at this boundary, in arrival order.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < globals_.size(); ++i) {
      if (globals_[i].at <= boundary) {
        EventFn fn = std::move(globals_[i].fn);
        moved = true;
        if (prof) {
          const std::uint64_t g0 = obs::KernelProfiler::now_nanos();
          fn();
          global_nanos += obs::KernelProfiler::now_nanos() - g0;
          ++global_tasks;
        } else {
          fn();
        }
      } else {
        if (kept != i) globals_[kept] = std::move(globals_[i]);
        ++kept;
      }
    }
    globals_.resize(kept);
    if (!moved) break;
  }
  if (prof) {
    const std::uint64_t total =
        obs::KernelProfiler::now_nanos() - drain_start;
    profiler_->add_drain(total > global_nanos ? total - global_nanos : 0,
                         mail_items);
    profiler_->add_global(global_nanos, global_tasks);
  }
  return delivered_due;
}

void ShardedSimulation::run_until(SimTime t) {
  const SimTime start_now = now();
  if (profiler_ != nullptr) profiler_->begin_run();
  run_until_impl(t);
  if (profiler_ != nullptr) {
    profiler_->end_run((now() - start_now).micros());
  }
}

void ShardedSimulation::run_until_impl(SimTime t) {
  stopping_ = false;
  progress_due_ = now() + progress_stride_;
  if (shards_.size() == 1) {
    Simulation& s = *shards_[0];
    if (!progress_) {
      s.run_until(t);
      return;
    }
    // Slice the delegated run into stride-long segments so the observer
    // fires between events. Intermediate horizons never change the event
    // trajectory — run_until(x) then run_until(t) executes the same
    // events in the same order as run_until(t) alone.
    while (!stopping_ && s.now() < t) {
      const SimTime next = std::min(t, s.now() + progress_stride_);
      s.run_until(next);
      progress_();
    }
    return;
  }
  if (t < now()) {
    throw std::invalid_argument("ShardedSimulation: run_until into the past");
  }
  const SimTime window = options_.window;
  while (!stopping_) {
    const SimTime w0 = shards_[0]->now();
    if (w0 >= t) break;
    // Idle skip: when every shard's earliest work — heap events, staged
    // globals, undelivered mail — lies beyond the next boundary, jump the
    // window grid forward. The skip depends only on deterministic shard
    // state, so it never perturbs the trajectory: a global or mail item
    // still lands at the first boundary at or after its requested time.
    SimTime horizon = SimTime::max();
    bool mail_pending = false;
    for (auto& shard : shards_) {
      horizon = std::min(horizon, shard->next_event_time());
    }
    for (const auto& task : globals_) horizon = std::min(horizon, task.at);
    for (const auto& staged : global_boxes_) {
      for (const auto& mail : staged.items) {
        horizon = std::min(horizon, mail.at);
      }
    }
    for (const auto& b : boxes_) {
      if (!b.items.empty()) mail_pending = true;
    }
    if (!mail_pending) {
      if (horizon == SimTime::max()) {
        // Nothing anywhere, ever: fast-forward all clocks to the target.
        for (auto& shard : shards_) shard->run_window(t);
        break;
      }
      const std::int64_t span = (std::min(horizon, t) - w0).micros();
      const std::int64_t whole = (span / window.micros()) * window.micros();
      if (whole > window.micros()) {
        // Land on the last grid boundary strictly before the horizon.
        const SimTime jump = w0 + SimTime::from_micros(whole) - window;
        for (auto& shard : shards_) shard->run_window(jump);
      }
    }
    const SimTime base = shards_[0]->now();
    const SimTime w1 = std::min(t, base + window);
    const bool final_pass = (w1 == t);
    parallel_window(w1, final_pass);
    if (stopping_) {
      // stop() came from control-shard code: other shards completed the
      // window; deliver their mail so nothing is lost, then return with
      // the control clock at the stop point (as the classic kernel does).
      drain(w1);
      return;
    }
    bool due = drain(w1);
    if (progress_ && shards_[0]->now() >= progress_due_) {
      // All shards parked at the boundary: safe to read cross-shard state.
      progress_();
      progress_due_ = shards_[0]->now() + progress_stride_;
    }
    if (final_pass) {
      // Mail delivered at exactly the horizon must still run (run_until
      // semantics: events at exactly `t` execute). Iterate to fixpoint;
      // each pass executes the newly drained events at t.
      while (due && !stopping_) {
        parallel_window(t, true);
        if (stopping_) {
          drain(t);
          return;
        }
        due = drain(t);
      }
      break;
    }
  }
}

void ShardedSimulation::stop() {
  stopping_ = true;
  shards_[0]->stop();
}

std::uint64_t ShardedSimulation::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->events_executed();
  return total;
}

std::uint64_t ShardedSimulation::events_scheduled() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->events_scheduled();
  return total;
}

}  // namespace oddci::sim

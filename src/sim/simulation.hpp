#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event.hpp"
#include "sim/time.hpp"
#include "sim/timer_wheel.hpp"

/// Deterministic discrete-event simulation kernel.
///
/// Events are `(time, priority, sequence)`-ordered: ties at equal time break
/// first on explicit priority (lower runs first), then on scheduling order,
/// so a fixed seed replays the exact same trajectory.
///
/// Engineered for million-node populations: callbacks live in a
/// slab-allocated pool of `EventFn` slots (inline storage, no heap
/// allocation for common captures), `cancel()` is an O(1) generation check
/// with lazy heap deletion, and recurring work (heartbeats, monitor loops,
/// churn arrivals) goes through a hierarchical timer wheel instead of
/// churning the heap. See timer_wheel.hpp for the wheel's ordering caveat.
namespace oddci::obs {
class KernelProfiler;
}  // namespace oddci::obs

namespace oddci::sim {

class Simulation {
 public:
  using Callback = EventFn;

  Simulation();
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (must be >= now()).
  /// Throws std::invalid_argument on scheduling into the past.
  EventId schedule_at(SimTime t, Callback cb,
                      EventPriority priority = EventPriority::kDefault);

  /// Schedule `cb` after `delay` (must be >= 0).
  EventId schedule_in(SimTime delay, Callback cb,
                      EventPriority priority = EventPriority::kDefault);

  /// Cancel a pending event. O(1). Returns false if it already ran, was
  /// already cancelled, or never existed.
  bool cancel(EventId id);

  /// One-shot or periodic timer via the hierarchical wheel: O(1) insert
  /// and re-arm regardless of population size. Use for delays of seconds
  /// and beyond or for recurring work; exact-time deliveries on the hot
  /// path should stay on schedule_at/schedule_in.
  TimerId schedule_timer_at(SimTime deadline, EventFn fn,
                            SimTime period = SimTime::zero(),
                            EventPriority priority = EventPriority::kTimer) {
    return wheel_->schedule_at(deadline, std::move(fn), period, priority);
  }
  TimerId schedule_timer_in(SimTime delay, EventFn fn,
                            SimTime period = SimTime::zero(),
                            EventPriority priority = EventPriority::kTimer) {
    return wheel_->schedule_in(delay, std::move(fn), period, priority);
  }
  bool cancel_timer(TimerId id) { return wheel_->cancel(id); }
  [[nodiscard]] bool timer_active(TimerId id) const {
    return wheel_->active(id);
  }
  [[nodiscard]] TimerWheel& timers() { return *wheel_; }

  /// Run until the event queue drains or stop() is called.
  void run();

  /// Run until simulated time reaches `t` (events at exactly `t` run).
  /// The clock is left at `t` even if the queue drains earlier.
  void run_until(SimTime t);

  /// Conservative-window variant for the sharded kernel: execute events
  /// strictly *before* `end` and leave the clock at `end`. Events at
  /// exactly `end` belong to the next window (they may be ordered against
  /// cross-shard mail drained at the `end` boundary). stop() breaks out
  /// with the clock at the last executed event.
  void run_window(SimTime end);

  /// Time of the earliest pending event (tombstones skimmed), or
  /// SimTime::max() when the heap is empty. Armed wheel timers are covered
  /// by their cascade event, so this is a safe lower bound on the next
  /// thing this kernel will do.
  [[nodiscard]] SimTime next_event_time();

  /// Execute the single next event. Returns false if the queue is empty.
  bool step();

  /// Request the current run()/run_until() to return after the current
  /// event completes.
  void stop() { stopping_ = true; }

  /// No pending heap events. Armed wheel timers keep the kernel non-empty
  /// through their cascade event.
  [[nodiscard]] bool empty() const { return live_events_ == 0; }
  [[nodiscard]] std::size_t pending_events() const { return live_events_; }

  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }
  [[nodiscard]] std::uint64_t events_scheduled() const { return next_seq_; }
  [[nodiscard]] std::uint64_t events_cancelled() const {
    return events_cancelled_;
  }

  /// Attach a wall-clock profiler: run()/run_until()/run_window() bodies
  /// are attributed to `shard`'s execute phase (two steady_clock reads per
  /// call — nothing per event). Null detaches. The profiler never touches
  /// sim state, so a seeded trajectory is identical with or without it.
  void set_profiler(obs::KernelProfiler* profiler, std::uint32_t shard) {
    profiler_ = profiler;
    profiler_shard_ = shard;
  }

 private:
  /// Pooled callback slot. `generation` tags EventIds so stale handles
  /// (executed/cancelled, slot possibly reused) are rejected in O(1).
  struct EventSlot {
    EventFn fn;
    std::uint32_t generation = 1;
    bool live = false;
  };

  /// Heap entry; cancelled events leave a tombstone that is dropped lazily
  /// when it reaches the top (its slot generation no longer matches).
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
    std::int32_t priority;

    // std::priority_queue is a max-heap, so the comparator is reversed:
    // "greater" entries pop later.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      if (priority != other.priority) return priority > other.priority;
      return seq > other.seq;
    }
  };

  [[nodiscard]] bool entry_live(const Entry& e) const {
    const EventSlot& s = slots_[e.slot];
    return s.live && s.generation == e.generation;
  }

  /// Drops tombstones at the heap top; returns false when the heap is
  /// drained. On true, the top entry is live.
  bool skim_top();

  /// Pop the (live) top entry, move its callback out, and free the slot.
  EventFn take_top(Entry& out);

  void free_slot(std::uint32_t index);

  SimTime now_;
  bool stopping_ = false;
  obs::KernelProfiler* profiler_ = nullptr;
  std::uint32_t profiler_shard_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t events_cancelled_ = 0;
  std::size_t live_events_ = 0;

  std::vector<Entry> heap_;
  std::vector<EventSlot> slots_;
  std::vector<std::uint32_t> free_;

  std::unique_ptr<TimerWheel> wheel_;
};

/// A repeating timer with a fixed period, implemented as an owning RAII
/// handle over a wheel timer. Destruction or cancel() stops future ticks;
/// moves transfer ownership, so cancelling a moved-from handle is a no-op
/// and never disturbs the live timer.
class PeriodicTask {
 public:
  PeriodicTask() = default;

  /// Starts ticking at absolute time `start` and then every `period`.
  /// The callback runs with EventPriority::kTimer.
  PeriodicTask(Simulation& simulation, SimTime start, SimTime period,
               EventFn on_tick);

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  PeriodicTask(PeriodicTask&& other) noexcept;
  PeriodicTask& operator=(PeriodicTask&& other) noexcept;
  ~PeriodicTask();

  void cancel();
  [[nodiscard]] bool active() const;

 private:
  Simulation* simulation_ = nullptr;
  TimerId id_ = kInvalidTimer;
};

}  // namespace oddci::sim

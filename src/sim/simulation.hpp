#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

/// Deterministic discrete-event simulation kernel.
///
/// Events are `(time, priority, sequence)`-ordered: ties at equal time break
/// first on explicit priority (lower runs first), then on scheduling order,
/// so a fixed seed replays the exact same trajectory.
namespace oddci::sim {

using EventId = std::uint64_t;

/// Priorities for same-timestamp ordering. Network deliveries run before
/// periodic timers so state observed by timers is up to date.
enum class EventPriority : int {
  kDelivery = 0,
  kDefault = 10,
  kTimer = 20,
  kMonitor = 30,
};

class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (must be >= now()).
  /// Throws std::invalid_argument on scheduling into the past.
  EventId schedule_at(SimTime t, Callback cb,
                      EventPriority priority = EventPriority::kDefault);

  /// Schedule `cb` after `delay` (must be >= 0).
  EventId schedule_in(SimTime delay, Callback cb,
                      EventPriority priority = EventPriority::kDefault);

  /// Cancel a pending event. Returns false if it already ran, was already
  /// cancelled, or never existed.
  bool cancel(EventId id);

  /// Run until the event queue drains or stop() is called.
  void run();

  /// Run until simulated time reaches `t` (events at exactly `t` run).
  /// The clock is left at `t` even if the queue drains earlier.
  void run_until(SimTime t);

  /// Execute the single next event. Returns false if the queue is empty.
  bool step();

  /// Request the current run()/run_until() to return after the current
  /// event completes.
  void stop() { stopping_ = true; }

  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return pending_.size(); }

  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }
  [[nodiscard]] std::uint64_t events_scheduled() const { return next_id_; }
  [[nodiscard]] std::uint64_t events_cancelled() const {
    return events_cancelled_;
  }

 private:
  struct Entry {
    SimTime time;
    int priority;
    EventId id;
    // std::priority_queue is a max-heap, so the comparator is reversed:
    // "greater" entries pop later.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      if (priority != other.priority) return priority > other.priority;
      return id > other.id;
    }
  };

  /// Pops heap entries until a live (non-cancelled) one is found.
  bool pop_next(Entry& out);

  SimTime now_;
  bool stopping_ = false;
  EventId next_id_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t events_cancelled_ = 0;
  std::priority_queue<Entry> queue_;
  std::unordered_map<EventId, Callback> pending_;
};

/// A repeating timer with a fixed period. Safe to destroy before or after
/// the simulation finishes; cancel() stops future ticks.
class PeriodicTask {
 public:
  PeriodicTask() = default;

  /// Starts ticking at absolute time `start` and then every `period`.
  /// The callback runs with EventPriority::kTimer.
  PeriodicTask(Simulation& simulation, SimTime start, SimTime period,
               std::function<void()> on_tick);

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  PeriodicTask(PeriodicTask&&) noexcept = default;
  PeriodicTask& operator=(PeriodicTask&&) noexcept = default;
  ~PeriodicTask() = default;

  void cancel();
  [[nodiscard]] bool active() const { return state_ && state_->active; }

 private:
  struct State {
    Simulation* simulation = nullptr;
    SimTime period;
    std::function<void()> on_tick;
    EventId pending = 0;
    bool has_pending = false;
    bool active = false;
  };
  static void arm(const std::shared_ptr<State>& state, SimTime at);

  std::shared_ptr<State> state_;
};

}  // namespace oddci::sim

#pragma once

#include <cstdint>
#include <vector>

#include "sim/event.hpp"
#include "sim/time.hpp"

/// Hierarchical timer wheel for recurring and far-future work.
///
/// The kernel's binary heap is ideal for the near-future delivery hot path
/// but pays O(log n) per operation and one heap entry per pending timer.
/// With a million receivers heartbeating every 30 s, that is a million
/// resident heap entries churned continuously. The wheel instead buckets
/// timers by expiry tick across `kLevels` levels of 64 slots each (tick
/// quantum 1.024 ms; level l spans 64^(l+1) ticks), giving O(1) insert,
/// cancel, and periodic re-arm.
///
/// Exactness and determinism are preserved by *promotion*: the wheel arms
/// a single kernel event (EventPriority::kInternal) at the next occupied
/// tick boundary; when it fires, due buckets cascade down and level-0
/// timers are promoted onto the main event heap at their exact deadline
/// with their configured priority. Firing times are therefore exact to the
/// microsecond, and a fixed seed replays the identical trajectory. Timers
/// that expire at the same timestamp run in a deterministic but
/// unspecified order relative to each other (bucket cascade order, not
/// scheduling order) — callers must not rely on cross-timer tie-breaks.
namespace oddci::sim {

class Simulation;

/// Generation-tagged handle, same encoding scheme as EventId.
using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

class TimerWheel {
 public:
  explicit TimerWheel(Simulation& simulation);

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arm a timer for absolute time `deadline` (must be >= now()). A
  /// positive `period` makes the timer re-arm itself every `period` after
  /// each expiry (first expiry at `deadline`); zero makes it one-shot.
  TimerId schedule_at(SimTime deadline, EventFn fn,
                      SimTime period = SimTime::zero(),
                      EventPriority priority = EventPriority::kTimer);

  /// Arm a timer `delay` from now (must be >= 0).
  TimerId schedule_in(SimTime delay, EventFn fn,
                      SimTime period = SimTime::zero(),
                      EventPriority priority = EventPriority::kTimer);

  /// Disarm. O(1). Returns false if the timer already expired (one-shot),
  /// was already cancelled, or never existed. Safe to call from within the
  /// timer's own callback (stops a periodic timer's future expiries).
  bool cancel(TimerId id);

  /// True while armed (including while its callback is executing).
  [[nodiscard]] bool active(TimerId id) const;

  /// Number of armed timers (bucketed + promoted + firing).
  [[nodiscard]] std::size_t active_timers() const { return active_count_; }

 private:
  /// 2^10 us = 1.024 ms per tick.
  static constexpr int kTickBits = 10;
  static constexpr int kSlotBits = 6;
  static constexpr std::uint64_t kSlots = 1ull << kSlotBits;
  static constexpr std::uint64_t kSlotMask = kSlots - 1;
  /// 8 levels span 64^8 ticks (~9,000 simulated years); anything beyond is
  /// clamped into the top level and re-cascades.
  static constexpr int kLevels = 8;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  enum class State : std::uint8_t {
    kFree,
    kQueued,     ///< linked into a wheel bucket
    kPromoted,   ///< handed to the main event heap at its exact deadline
    kFiring,     ///< callback currently executing
    kCancelled,  ///< cancelled from within its own callback
  };

  // Cache layout matters at million-timer populations: bucket walks
  // (enqueue/unlink/cascade) touch only the link+deadline metadata, so it
  // lives in the slot's first cache line; the 64-byte callback — needed only
  // at promote/fire time — takes the second. alignas pins the split so a
  // list traversal costs one line per node, not two.
  struct alignas(64) Timer {
    SimTime deadline;
    SimTime period;
    EventId promoted = kInvalidEvent;
    std::uint32_t generation = 1;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::int32_t priority = 0;
    std::uint8_t level = 0;
    std::uint8_t slot = 0;
    State state = State::kFree;
    alignas(64) EventFn fn;
  };
  static_assert(sizeof(Timer) == 128, "Timer should span two cache lines");

  [[nodiscard]] std::uint64_t now_tick() const;
  [[nodiscard]] static std::uint64_t tick_of(SimTime t) {
    return static_cast<std::uint64_t>(t.micros()) >> kTickBits;
  }

  std::uint32_t allocate_slot();
  void release_slot(std::uint32_t index);

  /// Bucket (or promote) timer `index` relative to the current tick.
  void place(std::uint32_t index, std::uint64_t current_tick);
  void enqueue(std::uint32_t index, int level, std::uint32_t slot);
  void unlink(std::uint32_t index);
  void promote(std::uint32_t index);

  /// Fire a promoted timer: run the callback, then re-arm (periodic) or
  /// release (one-shot / cancelled mid-callback).
  void fire(std::uint32_t index, std::uint32_t generation);

  /// Process every bucket due at `tick`, then re-arm the cascade event.
  void advance(std::uint64_t tick);

  /// Earliest tick at which a bucket needs promoting or cascading, or
  /// UINT64_MAX when the wheel is empty.
  [[nodiscard]] std::uint64_t next_due_tick(std::uint64_t current_tick) const;

  /// (Re-)arm the kernel cascade event for the next due tick.
  void rearm(std::uint64_t current_tick);
  void rearm_at(std::uint64_t due);

  Simulation& simulation_;
  std::vector<Timer> timers_;
  std::vector<std::uint32_t> free_;
  std::size_t active_count_ = 0;

  std::uint32_t head_[kLevels][kSlots];
  std::uint32_t tail_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels] = {};

  EventId cascade_event_ = kInvalidEvent;
  std::uint64_t cascade_tick_ = UINT64_MAX;
  bool advancing_ = false;
};

}  // namespace oddci::sim

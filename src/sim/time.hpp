#pragma once

#include <compare>
#include <cstdint>
#include <string>

/// Simulated time.
///
/// `SimTime` is a strong integer count of microseconds since the start of
/// the simulation. Integer ticks (rather than floating-point seconds) keep
/// event ordering exact and runs bit-reproducible. Conversions to/from
/// floating-point seconds happen only at the model/reporting boundary.
namespace oddci::sim {

class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] constexpr std::int64_t micros() const { return us_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(us_) / 1e6;
  }
  [[nodiscard]] constexpr double millis() const {
    return static_cast<double>(us_) / 1e3;
  }

  static constexpr SimTime zero() { return SimTime(0); }
  static constexpr SimTime from_micros(std::int64_t us) { return SimTime(us); }
  static constexpr SimTime from_millis(std::int64_t ms) {
    return SimTime(ms * 1000);
  }
  static constexpr SimTime from_seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr SimTime from_minutes(double m) {
    return from_seconds(m * 60.0);
  }
  static constexpr SimTime from_hours(double h) {
    return from_seconds(h * 3600.0);
  }
  /// Sentinel greater than every reachable simulation time.
  static constexpr SimTime max() {
    return SimTime(INT64_MAX);
  }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimTime d) {
    us_ += d.us_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime d) {
    us_ -= d.us_;
    return *this;
  }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.us_ + b.us_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.us_ - b.us_);
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime(a.us_ * k);
  }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace oddci::sim

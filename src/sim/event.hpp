#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

/// Pooled-event building blocks for the simulation kernel.
///
/// `EventFn` is the kernel's callback type: a move-only, type-erased
/// callable with inline storage for captures up to `kInlineSize` bytes.
/// Every hot-path event in the system (network delivery, heartbeat tick,
/// carousel acquisition, execution completion) fits in the inline buffer,
/// so scheduling performs zero heap allocations in the common case; larger
/// or throwing-move callables fall back to the heap transparently.
namespace oddci::sim {

/// Handle to a pending one-shot event. Encodes `(generation << 32 | slot)`
/// into the kernel's slab of pooled event slots; a stale handle (already
/// executed or cancelled, possibly with the slot since reused) is detected
/// by the generation tag and rejected in O(1).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Priorities for same-timestamp ordering. Network deliveries run before
/// periodic timers so state observed by timers is up to date. `kInternal`
/// is reserved for kernel bookkeeping (timer-wheel cascade events) which
/// must run before any user event at the same timestamp.
enum class EventPriority : int {
  kInternal = -100,
  kDelivery = 0,
  kDefault = 10,
  kTimer = 20,
  kMonitor = 30,
};

class EventFn {
 public:
  /// Inline capture capacity. Sized so `[this, token, std::function]`
  /// (8 + 8 + 32 bytes) and every kernel-internal capture stay inline.
  static constexpr std::size_t kInlineSize = 56;

  EventFn() = default;
  EventFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { adopt(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      adopt(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct into `dst` from `src` storage, destroying `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage);
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* s) { delete *std::launder(reinterpret_cast<D**>(s)); },
  };

  void adopt(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace oddci::sim

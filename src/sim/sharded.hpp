#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

/// Sharded parallel event kernel.
///
/// The receiver population is partitioned into K shards, each owning a
/// full single-threaded `Simulation` (slab event store, timer wheel, its
/// own clock). Shards advance in parallel worker threads under a
/// *conservative time-window barrier*: within a window [w, w+W) every
/// shard executes only its own events; anything that crosses shards is
/// appended to an inter-shard mailbox and drained by the coordinator at
/// the window boundary, in (window, source shard, send sequence) order.
/// Because the drain order is a pure function of the per-shard
/// trajectories — which are themselves deterministic — a seeded run is
/// byte-reproducible for any fixed K, regardless of thread scheduling.
///
/// Determinism contract (see DESIGN.md "Sharded kernel"):
///  * K = 1 takes a direct delegation path (no threads, no windows, no
///    mail) and is event-trajectory-identical to the pre-sharding kernel;
///  * for fixed K > 1, two same-seed runs produce identical trajectories,
///    metrics and traces; different K may (and generally do) differ,
///    because cross-shard deliveries are clamped to window boundaries.
///
/// Thread-safety is structural: a shard's state is touched only by the
/// thread running its window; mailbox segments are written by exactly one
/// producer thread per window and consumed by the coordinator while every
/// worker is parked at the barrier (the barrier's mutex provides the
/// happens-before edge). Nothing on the hot path takes a lock or touches
/// an atomic.
namespace oddci::sim {

class ShardedSimulation {
 public:
  struct Options {
    /// Number of shards (worker partitions). 1 = the classic kernel.
    std::size_t shards = 1;
    /// Conservative window width. Must not exceed the minimum cross-shard
    /// delivery latency or boundary clamping will distort timing more
    /// than a window's width (still deterministic, just coarser).
    SimTime window = SimTime::from_millis(5);

    void validate() const;
  };

  explicit ShardedSimulation(Options options);
  ~ShardedSimulation();

  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] SimTime window() const { return options_.window; }

  /// Shard `i`'s kernel. Shard 0 is the *control shard*: the Controller,
  /// Backend, Provider and broadcast channels live there, and its thread
  /// is the coordinator itself.
  [[nodiscard]] Simulation& shard(std::size_t i) { return *shards_[i]; }
  [[nodiscard]] const Simulation& shard(std::size_t i) const {
    return *shards_[i];
  }
  [[nodiscard]] Simulation& control() { return *shards_[0]; }

  /// Control-shard clock (the canonical "now" between windows).
  [[nodiscard]] SimTime now() const { return shards_[0]->now(); }

  /// Cross-shard post: run `fn` on shard `dst` at `max(at, next window
  /// boundary)`. Must be called from the thread currently running shard
  /// `src` (or from the coordinator between windows with src = 0). The
  /// mail is drained at the boundary in (source shard, send sequence)
  /// order, which makes the interleaving deterministic. With K = 1 this
  /// degenerates to schedule_at(max(at, now)) — no windows exist.
  void post(std::size_t src, std::size_t dst, SimTime at, EventFn fn,
            EventPriority priority = EventPriority::kDelivery);

  /// Run `fn` on the coordinator thread at the first window boundary
  /// >= `at`, with every shard parked — the safe place to read or mutate
  /// state spanning shards (samplers, fault plans, deferred removals).
  /// Same calling rule as post(): from the thread running shard `src`.
  /// Tasks due at one boundary run in (source shard, send sequence)
  /// order; with K = 1 this is schedule_at(max(at, now)) on the shard.
  void post_global(std::size_t src, SimTime at, EventFn fn);

  /// Advance every shard to `t` (events at exactly `t` run, as in
  /// Simulation::run_until). Returns early when stop() was called.
  void run_until(SimTime t);

  /// Request the current run_until() to return at the next boundary; the
  /// control shard additionally breaks out of its current window. Must be
  /// called from control-shard code (or between windows).
  void stop();

  /// Attach a wall-clock profiler (or detach with nullptr). Also attaches
  /// every shard kernel, so execute time lands in per-shard cells; window
  /// spans, barrier stalls, drains and global tasks are recorded by the
  /// coordinator. The profiler must have been built for this shard count
  /// and never perturbs the event trajectory.
  void set_profiler(obs::KernelProfiler* profiler);

  /// Install a progress observer: `fn` runs on the coordinator thread with
  /// every shard parked, at most once per `stride` of simulated time. With
  /// K = 1 the delegated run is sliced into stride-long run_until segments
  /// (event-trajectory-identical). The observer may read shard state but
  /// must not mutate it or schedule events. Null `fn` disables.
  void set_progress(std::function<void()> fn, SimTime stride);

  // --- merged counters (valid between windows / after run_until) -----------
  [[nodiscard]] std::uint64_t events_executed() const;
  [[nodiscard]] std::uint64_t events_scheduled() const;
  /// Mail items delivered across shards so far.
  [[nodiscard]] std::uint64_t cross_posts() const { return cross_posts_; }
  /// Mail whose requested time preceded its delivery boundary and was
  /// therefore clamped forward (the conservative-window timing cost).
  [[nodiscard]] std::uint64_t clamped_posts() const { return clamped_posts_; }
  /// Windows executed (barrier crossings).
  [[nodiscard]] std::uint64_t windows_run() const { return windows_run_; }

 private:
  struct Mail {
    SimTime at;
    EventFn fn;
    EventPriority priority;
  };
  /// One producer (the shard-src thread, during a window), one consumer
  /// (the coordinator, at the barrier). Padded so two producers never
  /// share a cache line.
  struct alignas(64) MailBox {
    std::vector<Mail> items;
  };
  struct GlobalTask {
    SimTime at;
    std::uint64_t seq = 0;
    EventFn fn;
  };

  [[nodiscard]] MailBox& box(std::size_t src, std::size_t dst) {
    return boxes_[src * shards_.size() + dst];
  }

  /// Run one window [now, w1) on all shards in parallel; `inclusive`
  /// additionally executes events at exactly w1 (the final pass at the
  /// run_until horizon).
  void parallel_window(SimTime w1, bool inclusive);
  /// Drain all mailboxes into their destination heaps (clamped to
  /// `boundary`) and run due global tasks. Returns true if any mail was
  /// delivered (the run loop uses this for the fixpoint at the horizon).
  bool drain(SimTime boundary);
  void worker_loop(std::size_t shard_index);
  void run_until_impl(SimTime t);

  Options options_;
  std::vector<std::unique_ptr<Simulation>> shards_;
  std::vector<MailBox> boxes_;
  /// Per-source staging for post_global (same single-producer rule as the
  /// mailboxes); merged into globals_ at each barrier.
  std::vector<MailBox> global_boxes_;
  std::vector<GlobalTask> globals_;
  std::uint64_t global_seq_ = 0;

  bool stopping_ = false;
  std::uint64_t cross_posts_ = 0;
  std::uint64_t clamped_posts_ = 0;
  std::uint64_t windows_run_ = 0;

  obs::KernelProfiler* profiler_ = nullptr;
  std::function<void()> progress_;
  SimTime progress_stride_;
  SimTime progress_due_;

  // --- barrier (phaser) machinery ------------------------------------------
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::uint64_t epoch_ = 0;
  std::size_t outstanding_ = 0;
  SimTime target_;
  bool inclusive_ = false;
  bool shutdown_ = false;
  std::vector<std::exception_ptr> worker_errors_;
  std::vector<std::thread> workers_;
};

}  // namespace oddci::sim

#include "sim/simulation.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/profiler.hpp"  // header-only recording; no link dependency

namespace oddci::sim {
namespace {

/// RAII execute-phase timer: two steady_clock reads when a profiler is
/// attached, nothing otherwise.
class ExecuteScope {
 public:
  ExecuteScope(obs::KernelProfiler* profiler, std::uint32_t shard)
      : profiler_(profiler),
        shard_(shard),
        start_(profiler != nullptr ? obs::KernelProfiler::now_nanos() : 0) {}

  ~ExecuteScope() {
    if (profiler_ != nullptr) {
      profiler_->add_execute(shard_,
                             obs::KernelProfiler::now_nanos() - start_);
    }
  }

  ExecuteScope(const ExecuteScope&) = delete;
  ExecuteScope& operator=(const ExecuteScope&) = delete;

 private:
  obs::KernelProfiler* profiler_;
  std::uint32_t shard_;
  std::uint64_t start_;
};

}  // namespace

std::string SimTime::to_string() const {
  const double s = seconds();
  if (s >= 3600.0) return std::to_string(s / 3600.0) + " h";
  if (s >= 60.0) return std::to_string(s / 60.0) + " min";
  if (s >= 1.0) return std::to_string(s) + " s";
  return std::to_string(millis()) + " ms";
}

Simulation::Simulation() : wheel_(std::make_unique<TimerWheel>(*this)) {}

Simulation::~Simulation() = default;

EventId Simulation::schedule_at(SimTime t, Callback cb,
                                EventPriority priority) {
  if (t < now_) {
    throw std::invalid_argument("Simulation: scheduling into the past");
  }
  if (!cb) {
    throw std::invalid_argument("Simulation: empty callback");
  }

  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  EventSlot& slot = slots_[index];
  slot.fn = std::move(cb);
  slot.live = true;

  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{t, seq, index, slot.generation,
                        static_cast<std::int32_t>(priority)});
  std::push_heap(heap_.begin(), heap_.end());
  ++live_events_;
  return (static_cast<EventId>(slot.generation) << 32) | index;
}

EventId Simulation::schedule_in(SimTime delay, Callback cb,
                                EventPriority priority) {
  if (delay < SimTime::zero()) {
    throw std::invalid_argument("Simulation: negative delay");
  }
  return schedule_at(now_ + delay, std::move(cb), priority);
}

void Simulation::free_slot(std::uint32_t index) {
  EventSlot& slot = slots_[index];
  slot.fn.reset();
  slot.live = false;
  ++slot.generation;
  free_.push_back(index);
}

bool Simulation::cancel(EventId id) {
  const auto index = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (index >= slots_.size()) return false;
  EventSlot& slot = slots_[index];
  if (!slot.live || slot.generation != generation) return false;
  // The heap entry stays behind as a tombstone and is skimmed lazily when
  // it reaches the top; the callback's resources are released now.
  free_slot(index);
  --live_events_;
  ++events_cancelled_;
  return true;
}

bool Simulation::skim_top() {
  while (!heap_.empty()) {
    if (entry_live(heap_.front())) return true;
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
  return false;
}

EventFn Simulation::take_top(Entry& out) {
  out = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end());
  heap_.pop_back();
  // Move the callback out and recycle the slot *before* invoking, so the
  // callback may freely schedule new events (which may reuse the slot) and
  // a self-cancel attempt correctly reports false.
  EventFn fn = std::move(slots_[out.slot].fn);
  free_slot(out.slot);
  --live_events_;
  return fn;
}

bool Simulation::step() {
  if (!skim_top()) return false;
  Entry e;
  EventFn fn = take_top(e);
  now_ = e.time;
  ++events_executed_;
  fn();
  return true;
}

void Simulation::run() {
  stopping_ = false;
  ExecuteScope scope(profiler_, profiler_shard_);
  while (!stopping_ && step()) {
  }
}

void Simulation::run_until(SimTime t) {
  if (t < now_) {
    throw std::invalid_argument("Simulation: run_until into the past");
  }
  stopping_ = false;
  ExecuteScope scope(profiler_, profiler_shard_);
  while (!stopping_ && skim_top()) {
    if (heap_.front().time > t) break;  // beyond the horizon: leave queued
    Entry e;
    EventFn fn = take_top(e);
    now_ = e.time;
    ++events_executed_;
    fn();
  }
  if (!stopping_) now_ = t;
}

void Simulation::run_window(SimTime end) {
  if (end < now_) {
    throw std::invalid_argument("Simulation: run_window into the past");
  }
  stopping_ = false;
  ExecuteScope scope(profiler_, profiler_shard_);
  while (!stopping_ && skim_top()) {
    if (heap_.front().time >= end) break;  // next window's business
    Entry e;
    EventFn fn = take_top(e);
    now_ = e.time;
    ++events_executed_;
    fn();
  }
  if (!stopping_) now_ = end;
}

SimTime Simulation::next_event_time() {
  if (!skim_top()) return SimTime::max();
  return heap_.front().time;
}

PeriodicTask::PeriodicTask(Simulation& simulation, SimTime start,
                           SimTime period, EventFn on_tick)
    : simulation_(&simulation) {
  if (period <= SimTime::zero()) {
    throw std::invalid_argument("PeriodicTask: period must be positive");
  }
  id_ = simulation.schedule_timer_at(start, std::move(on_tick), period,
                                     EventPriority::kTimer);
}

PeriodicTask::PeriodicTask(PeriodicTask&& other) noexcept
    : simulation_(std::exchange(other.simulation_, nullptr)),
      id_(std::exchange(other.id_, kInvalidTimer)) {}

PeriodicTask& PeriodicTask::operator=(PeriodicTask&& other) noexcept {
  if (this != &other) {
    cancel();
    simulation_ = std::exchange(other.simulation_, nullptr);
    id_ = std::exchange(other.id_, kInvalidTimer);
  }
  return *this;
}

PeriodicTask::~PeriodicTask() { cancel(); }

void PeriodicTask::cancel() {
  if (simulation_ != nullptr && id_ != kInvalidTimer) {
    simulation_->cancel_timer(id_);
    id_ = kInvalidTimer;
  }
}

bool PeriodicTask::active() const {
  return simulation_ != nullptr && id_ != kInvalidTimer &&
         simulation_->timer_active(id_);
}

}  // namespace oddci::sim

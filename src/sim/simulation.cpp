#include "sim/simulation.hpp"

#include <stdexcept>
#include <utility>

namespace oddci::sim {

std::string SimTime::to_string() const {
  const double s = seconds();
  if (s >= 3600.0) return std::to_string(s / 3600.0) + " h";
  if (s >= 60.0) return std::to_string(s / 60.0) + " min";
  if (s >= 1.0) return std::to_string(s) + " s";
  return std::to_string(millis()) + " ms";
}

EventId Simulation::schedule_at(SimTime t, Callback cb,
                                EventPriority priority) {
  if (t < now_) {
    throw std::invalid_argument("Simulation: scheduling into the past");
  }
  if (!cb) {
    throw std::invalid_argument("Simulation: empty callback");
  }
  const EventId id = next_id_++;
  queue_.push(Entry{t, static_cast<int>(priority), id});
  pending_.emplace(id, std::move(cb));
  return id;
}

EventId Simulation::schedule_in(SimTime delay, Callback cb,
                                EventPriority priority) {
  if (delay < SimTime::zero()) {
    throw std::invalid_argument("Simulation: negative delay");
  }
  return schedule_at(now_ + delay, std::move(cb), priority);
}

bool Simulation::cancel(EventId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  ++events_cancelled_;
  return true;
}

bool Simulation::pop_next(Entry& out) {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (pending_.count(e.id) > 0) {
      out = e;
      return true;
    }
    // Cancelled tombstone: drop and continue.
  }
  return false;
}

bool Simulation::step() {
  Entry e;
  if (!pop_next(e)) return false;
  now_ = e.time;
  auto it = pending_.find(e.id);
  Callback cb = std::move(it->second);
  pending_.erase(it);
  ++events_executed_;
  cb();
  return true;
}

void Simulation::run() {
  stopping_ = false;
  while (!stopping_ && step()) {
  }
}

void Simulation::run_until(SimTime t) {
  if (t < now_) {
    throw std::invalid_argument("Simulation: run_until into the past");
  }
  stopping_ = false;
  for (;;) {
    if (stopping_) return;
    Entry e;
    if (!pop_next(e)) break;
    if (e.time > t) {
      // Put the event back: it belongs to the future beyond the horizon.
      queue_.push(e);
      break;
    }
    now_ = e.time;
    auto it = pending_.find(e.id);
    Callback cb = std::move(it->second);
    pending_.erase(it);
    ++events_executed_;
    cb();
  }
  now_ = t;
}

PeriodicTask::PeriodicTask(Simulation& simulation, SimTime start,
                           SimTime period, std::function<void()> on_tick) {
  if (period <= SimTime::zero()) {
    throw std::invalid_argument("PeriodicTask: period must be positive");
  }
  state_ = std::make_shared<State>();
  state_->simulation = &simulation;
  state_->period = period;
  state_->on_tick = std::move(on_tick);
  state_->active = true;
  arm(state_, start);
}

void PeriodicTask::arm(const std::shared_ptr<State>& state, SimTime at) {
  std::weak_ptr<State> weak = state;
  state->pending = state->simulation->schedule_at(
      at,
      [weak] {
        auto s = weak.lock();
        if (!s || !s->active) return;
        s->has_pending = false;
        s->on_tick();
        if (s->active) {
          arm(s, s->simulation->now() + s->period);
        }
      },
      EventPriority::kTimer);
  state->has_pending = true;
}

void PeriodicTask::cancel() {
  if (!state_) return;
  state_->active = false;
  if (state_->has_pending) {
    state_->simulation->cancel(state_->pending);
    state_->has_pending = false;
  }
}

}  // namespace oddci::sim

#include "sim/timer_wheel.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "sim/simulation.hpp"

namespace oddci::sim {

namespace {

// Bucket lists chain timers scattered across a slab that far exceeds cache
// at million-timer populations; overlapping the next node's fetch with the
// current node's processing hides most of that latency.
inline void prefetch(const void* p) {
#if defined(__GNUC__)
  __builtin_prefetch(p);
#else
  (void)p;
#endif
}

}  // namespace

TimerWheel::TimerWheel(Simulation& simulation) : simulation_(simulation) {
  std::memset(head_, 0xFF, sizeof(head_));  // all kNil
  std::memset(tail_, 0xFF, sizeof(tail_));
}

std::uint64_t TimerWheel::now_tick() const {
  return tick_of(simulation_.now());
}

std::uint32_t TimerWheel::allocate_slot() {
  if (!free_.empty()) {
    const std::uint32_t index = free_.back();
    free_.pop_back();
    return index;
  }
  const auto index = static_cast<std::uint32_t>(timers_.size());
  timers_.emplace_back();
  return index;
}

void TimerWheel::release_slot(std::uint32_t index) {
  Timer& t = timers_[index];
  t.fn.reset();
  t.promoted = kInvalidEvent;
  t.state = State::kFree;
  ++t.generation;
  free_.push_back(index);
  --active_count_;
}

TimerId TimerWheel::schedule_at(SimTime deadline, EventFn fn, SimTime period,
                                EventPriority priority) {
  if (deadline < simulation_.now()) {
    throw std::invalid_argument("TimerWheel: scheduling into the past");
  }
  if (period < SimTime::zero()) {
    throw std::invalid_argument("TimerWheel: negative period");
  }
  if (!fn) {
    throw std::invalid_argument("TimerWheel: empty callback");
  }
  const std::uint32_t index = allocate_slot();
  Timer& t = timers_[index];
  t.fn = std::move(fn);
  t.deadline = deadline;
  t.period = period;
  t.priority = static_cast<std::int32_t>(priority);
  ++active_count_;
  place(index, now_tick());
  return (static_cast<TimerId>(timers_[index].generation) << 32) | index;
}

TimerId TimerWheel::schedule_in(SimTime delay, EventFn fn, SimTime period,
                                EventPriority priority) {
  if (delay < SimTime::zero()) {
    throw std::invalid_argument("TimerWheel: negative delay");
  }
  return schedule_at(simulation_.now() + delay, std::move(fn), period,
                     priority);
}

void TimerWheel::enqueue(std::uint32_t index, int level, std::uint32_t slot) {
  Timer& t = timers_[index];
  t.state = State::kQueued;
  t.level = static_cast<std::uint8_t>(level);
  t.slot = static_cast<std::uint8_t>(slot);
  t.next = kNil;
  t.prev = tail_[level][slot];
  if (t.prev != kNil) {
    timers_[t.prev].next = index;
  } else {
    head_[level][slot] = index;
  }
  tail_[level][slot] = index;
  occupied_[level] |= 1ull << slot;
}

void TimerWheel::unlink(std::uint32_t index) {
  Timer& t = timers_[index];
  if (t.prev != kNil) {
    timers_[t.prev].next = t.next;
  } else {
    head_[t.level][t.slot] = t.next;
  }
  if (t.next != kNil) {
    timers_[t.next].prev = t.prev;
  } else {
    tail_[t.level][t.slot] = t.prev;
  }
  if (head_[t.level][t.slot] == kNil) {
    occupied_[t.level] &= ~(1ull << t.slot);
  }
  t.prev = kNil;
  t.next = kNil;
}

void TimerWheel::promote(std::uint32_t index) {
  Timer& t = timers_[index];
  t.state = State::kPromoted;
  const std::uint32_t generation = t.generation;
  t.promoted = simulation_.schedule_at(
      t.deadline,
      [this, index, generation] { fire(index, generation); },
      static_cast<EventPriority>(t.priority));
}

void TimerWheel::place(std::uint32_t index, std::uint64_t current_tick) {
  Timer& t = timers_[index];
  const std::uint64_t tick = tick_of(t.deadline);
  if (tick <= current_tick) {
    // Due within the current quantum: straight onto the main heap at the
    // exact deadline.
    promote(index);
  } else {
    std::uint64_t delta = tick - current_tick;
    // Clamp pathological far-future deadlines into the top level; they
    // re-cascade there until close enough.
    const std::uint64_t span = 1ull << (kSlotBits * kLevels);
    std::uint64_t place_tick = tick;
    if (delta >= span) {
      place_tick = current_tick + span - 1;
      delta = span - 1;
    }
    int level = 0;
    while (delta >= (kSlots << (kSlotBits * level))) {
      ++level;
    }
    const auto slot = static_cast<std::uint32_t>(
        (place_tick >> (kSlotBits * level)) & kSlotMask);
    enqueue(index, level, slot);
    // This bucket is processed exactly at its window-start tick, so the
    // wheel's next wake-up after the insert is min(cascade_tick_, own_due) —
    // an O(1) comparison, no level scan. advance() suppresses re-arms while
    // cascading and does a single full re-arm at the end.
    const std::uint64_t own_due =
        level == 0 ? place_tick
                   : (place_tick >> (kSlotBits * level)) << (kSlotBits * level);
    if (!advancing_ && own_due < cascade_tick_) {
      rearm_at(own_due);
    }
  }
}

std::uint64_t TimerWheel::next_due_tick(std::uint64_t current_tick) const {
  std::uint64_t due = UINT64_MAX;
  for (int level = 0; level < kLevels; ++level) {
    const std::uint64_t occ = occupied_[level];
    if (occ == 0) continue;
    const std::uint64_t base = current_tick >> (kSlotBits * level);
    const auto at = static_cast<std::uint32_t>(base & kSlotMask);
    // Bit k of the rotation = slot (at + k) & 63. Distance 0 is the current
    // slot itself, which holds wrapped-around timers due a full turn later
    // (its current window was already handled when we entered it) — it must
    // not mask nearer slots, so consider it separately from the rest.
    std::uint64_t rotated = std::rotr(occ, static_cast<int>(at));
    if ((rotated & 1ull) != 0) {
      const std::uint64_t tick = (base + kSlots) << (kSlotBits * level);
      if (tick < due) due = tick;
      rotated &= ~1ull;
    }
    if (rotated != 0) {
      const auto distance =
          static_cast<std::uint64_t>(std::countr_zero(rotated));
      const std::uint64_t tick = (base + distance) << (kSlotBits * level);
      if (tick < due) due = tick;
    }
  }
  return due;
}

void TimerWheel::rearm(std::uint64_t current_tick) {
  rearm_at(next_due_tick(current_tick));
}

void TimerWheel::rearm_at(std::uint64_t due) {
  if (due == cascade_tick_) return;
  if (cascade_event_ != kInvalidEvent) {
    simulation_.cancel(cascade_event_);
    cascade_event_ = kInvalidEvent;
  }
  cascade_tick_ = due;
  if (due == UINT64_MAX) return;
  cascade_event_ = simulation_.schedule_at(
      SimTime::from_micros(static_cast<std::int64_t>(due << kTickBits)),
      [this, due] { advance(due); }, EventPriority::kInternal);
}

void TimerWheel::advance(std::uint64_t tick) {
  cascade_event_ = kInvalidEvent;
  cascade_tick_ = UINT64_MAX;
  advancing_ = true;

  // Cascade due higher-level buckets top-down: re-placed timers land
  // strictly below their previous level (or promote immediately), so each
  // bucket is visited once.
  for (int level = kLevels - 1; level >= 1; --level) {
    const std::uint64_t window_mask = (1ull << (kSlotBits * level)) - 1;
    if ((tick & window_mask) != 0) continue;  // not a window boundary
    const auto slot = static_cast<std::uint32_t>(
        (tick >> (kSlotBits * level)) & kSlotMask);
    std::uint32_t index = head_[level][slot];
    head_[level][slot] = kNil;
    tail_[level][slot] = kNil;
    occupied_[level] &= ~(1ull << slot);
    while (index != kNil) {
      const std::uint32_t next = timers_[index].next;
      if (next != kNil) prefetch(&timers_[next]);
      timers_[index].prev = kNil;
      timers_[index].next = kNil;
      place(index, tick);
      index = next;
    }
  }

  // Promote the level-0 bucket due at this tick, in bucket (FIFO) order.
  const auto slot0 = static_cast<std::uint32_t>(tick & kSlotMask);
  if ((occupied_[0] >> slot0) & 1ull) {
    std::uint32_t index = head_[0][slot0];
    head_[0][slot0] = kNil;
    tail_[0][slot0] = kNil;
    occupied_[0] &= ~(1ull << slot0);
    while (index != kNil) {
      const std::uint32_t next = timers_[index].next;
      if (next != kNil) prefetch(&timers_[next]);
      timers_[index].prev = kNil;
      timers_[index].next = kNil;
      promote(index);
      index = next;
    }
  }

  advancing_ = false;
  rearm(tick);
}

void TimerWheel::fire(std::uint32_t index, std::uint32_t generation) {
  {
    Timer& t = timers_[index];
    if (t.generation != generation) return;  // stale (defensive; cancel
                                             // also cancels the heap event)
    t.state = State::kFiring;
    t.promoted = kInvalidEvent;
  }
  // Move the callback out before invoking: the callback may schedule new
  // timers, which can grow `timers_` and relocate every slot (including
  // the one whose captures are executing).
  EventFn fn = std::move(timers_[index].fn);
  fn();

  Timer& t = timers_[index];
  if (t.generation != generation || t.state == State::kCancelled) {
    // Cancelled from within its own callback.
    if (t.generation == generation) release_slot(index);
    return;
  }
  if (t.period > SimTime::zero()) {
    t.fn = std::move(fn);
    t.deadline += t.period;
    t.state = State::kQueued;
    place(index, now_tick());
  } else {
    release_slot(index);
  }
}

bool TimerWheel::cancel(TimerId id) {
  const auto index = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (index >= timers_.size()) return false;
  Timer& t = timers_[index];
  if (t.generation != generation) return false;
  switch (t.state) {
    case State::kQueued:
      unlink(index);
      release_slot(index);
      return true;
    case State::kPromoted:
      simulation_.cancel(t.promoted);
      release_slot(index);
      return true;
    case State::kFiring:
      // Mid-callback: mark; fire() releases the slot after the callback
      // returns (and suppresses any periodic re-arm).
      t.state = State::kCancelled;
      return true;
    case State::kCancelled:
    case State::kFree:
      return false;
  }
  return false;
}

bool TimerWheel::active(TimerId id) const {
  const auto index = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (index >= timers_.size()) return false;
  const Timer& t = timers_[index];
  if (t.generation != generation) return false;
  return t.state == State::kQueued || t.state == State::kPromoted ||
         t.state == State::kFiring;
}

}  // namespace oddci::sim

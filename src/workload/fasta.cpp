#include "workload/fasta.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace oddci::workload {

std::vector<FastaRecord> parse_fasta(const std::string& text) {
  std::vector<FastaRecord> records;
  std::istringstream in(text);
  std::string line;
  bool have_record = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      FastaRecord rec;
      const std::string header = line.substr(1);
      const auto space = header.find_first_of(" \t");
      if (space == std::string::npos) {
        rec.id = header;
      } else {
        rec.id = header.substr(0, space);
        const auto rest = header.find_first_not_of(" \t", space);
        if (rest != std::string::npos) rec.description = header.substr(rest);
      }
      if (rec.id.empty()) {
        throw std::runtime_error("parse_fasta: empty record id");
      }
      records.push_back(std::move(rec));
      have_record = true;
    } else {
      if (!have_record) {
        throw std::runtime_error("parse_fasta: sequence before any header");
      }
      records.back().sequence += line;
    }
  }
  for (const auto& rec : records) {
    if (rec.sequence.empty()) {
      throw std::runtime_error("parse_fasta: record '" + rec.id +
                               "' has no sequence");
    }
  }
  return records;
}

std::string write_fasta(const std::vector<FastaRecord>& records,
                        std::size_t width) {
  if (width == 0) {
    throw std::invalid_argument("write_fasta: width must be > 0");
  }
  std::ostringstream out;
  for (const auto& rec : records) {
    out << '>' << rec.id;
    if (!rec.description.empty()) out << ' ' << rec.description;
    out << '\n';
    for (std::size_t i = 0; i < rec.sequence.size(); i += width) {
      out << rec.sequence.substr(i, width) << '\n';
    }
  }
  return out.str();
}

std::vector<FastaRecord> load_fasta_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    throw std::runtime_error("load_fasta_file: cannot open " + path);
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return parse_fasta(ss.str());
}

void save_fasta_file(const std::string& path,
                     const std::vector<FastaRecord>& records,
                     std::size_t width) {
  std::ofstream f(path);
  if (!f) {
    throw std::runtime_error("save_fasta_file: cannot open " + path);
  }
  f << write_fasta(records, width);
}

}  // namespace oddci::workload

#include "workload/alignment.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace oddci::workload {

void Scoring::validate() const {
  if (match <= 0) {
    throw std::invalid_argument("Scoring: match must be positive");
  }
  if (mismatch >= 0) {
    throw std::invalid_argument("Scoring: mismatch must be negative");
  }
  if (gap_open >= 0 || gap_extend >= 0) {
    throw std::invalid_argument("Scoring: gap penalties must be negative");
  }
}

namespace {
constexpr int kNegInf = std::numeric_limits<int>::min() / 4;
}  // namespace

AlignmentResult smith_waterman(std::string_view query,
                               std::string_view subject,
                               const Scoring& scoring) {
  scoring.validate();
  AlignmentResult best;
  if (query.empty() || subject.empty()) return best;

  const std::size_t m = query.size();
  const std::size_t n = subject.size();

  // Rolling rows: H (match/mismatch lattice), E (gap in subject, i.e. the
  // query consumed), F (gap in query).
  std::vector<int> h_prev(n + 1, 0), h_cur(n + 1, 0);
  std::vector<int> e_prev(n + 1, kNegInf), e_cur(n + 1, kNegInf);
  std::vector<int> f_cur(n + 1, kNegInf);

  std::size_t best_i = 0, best_j = 0;

  for (std::size_t i = 1; i <= m; ++i) {
    h_cur[0] = 0;
    e_cur[0] = kNegInf;
    f_cur[0] = kNegInf;
    const char qc = query[i - 1];
    for (std::size_t j = 1; j <= n; ++j) {
      // E: gap opened/extended vertically (advance in query only).
      e_cur[j] = std::max(h_prev[j] + scoring.gap_open,
                          e_prev[j] + scoring.gap_extend);
      // F: gap opened/extended horizontally (advance in subject only).
      f_cur[j] = std::max(h_cur[j - 1] + scoring.gap_open,
                          f_cur[j - 1] + scoring.gap_extend);
      const int sub =
          h_prev[j - 1] +
          (qc == subject[j - 1] ? scoring.match : scoring.mismatch);
      int h = std::max({0, sub, e_cur[j], f_cur[j]});
      h_cur[j] = h;
      if (h > best.score) {
        best.score = h;
        best_i = i;
        best_j = j;
      }
    }
    std::swap(h_prev, h_cur);
    std::swap(e_prev, e_cur);
  }

  best.cells = static_cast<std::uint64_t>(m) * n;
  best.query_end = best_i;
  best.subject_end = best_j;
  // Without a traceback matrix we bound the start by the best-case span
  // (pure matches): report a conservative begin. Callers that need exact
  // spans re-align the window (banded_align keeps full rows and could; the
  // workload model only needs score + cells).
  const auto span =
      static_cast<std::size_t>(best.score / scoring.match);
  best.query_begin = best_i >= span ? best_i - span : 0;
  best.subject_begin = best_j >= span ? best_j - span : 0;
  return best;
}

AlignmentResult ungapped_extend(std::string_view query,
                                std::string_view subject, std::size_t q_pos,
                                std::size_t s_pos, std::size_t seed_len,
                                const Scoring& scoring, int x_drop) {
  scoring.validate();
  if (x_drop <= 0) {
    throw std::invalid_argument("ungapped_extend: x_drop must be positive");
  }
  if (q_pos + seed_len > query.size() || s_pos + seed_len > subject.size()) {
    throw std::invalid_argument("ungapped_extend: seed out of range");
  }

  AlignmentResult r;
  const int seed_score = static_cast<int>(seed_len) * scoring.match;
  std::uint64_t cells = seed_len;

  // Right extension.
  int best_right = 0;
  std::size_t right = 0;
  {
    int run = 0;
    std::size_t qi = q_pos + seed_len;
    std::size_t sj = s_pos + seed_len;
    std::size_t k = 0;
    while (qi + k < query.size() && sj + k < subject.size()) {
      run += query[qi + k] == subject[sj + k] ? scoring.match
                                              : scoring.mismatch;
      ++cells;
      if (run > best_right) {
        best_right = run;
        right = k + 1;
      } else if (best_right - run > x_drop) {
        break;
      }
      ++k;
    }
  }

  // Left extension.
  int best_left = 0;
  std::size_t left = 0;
  {
    int run = 0;
    std::size_t k = 0;
    while (k < q_pos && k < s_pos) {
      run += query[q_pos - 1 - k] == subject[s_pos - 1 - k] ? scoring.match
                                                            : scoring.mismatch;
      ++cells;
      if (run > best_left) {
        best_left = run;
        left = k + 1;
      } else if (best_left - run > x_drop) {
        break;
      }
      ++k;
    }
  }

  r.score = seed_score + best_left + best_right;
  r.query_begin = q_pos - left;
  r.query_end = q_pos + seed_len + right;
  r.subject_begin = s_pos - left;
  r.subject_end = s_pos + seed_len + right;
  r.cells = cells;
  return r;
}

AlignmentResult banded_align(std::string_view query, std::string_view subject,
                             const Scoring& scoring, int band) {
  scoring.validate();
  if (band <= 0) {
    throw std::invalid_argument("banded_align: band must be positive");
  }
  AlignmentResult best;
  if (query.empty() || subject.empty()) return best;

  const auto m = static_cast<std::ptrdiff_t>(query.size());
  const auto n = static_cast<std::ptrdiff_t>(subject.size());
  const std::ptrdiff_t b = band;

  // Band around the main diagonal j - i in [-b, b]; windows handed to this
  // function are pre-trimmed by the seeded search so the anchor diagonal is
  // the main diagonal of the window.
  const std::size_t width = static_cast<std::size_t>(2 * b + 1);
  std::vector<int> h_prev(width, 0), h_cur(width, 0);
  std::vector<int> e_prev(width, kNegInf), e_cur(width, kNegInf);

  std::uint64_t cells = 0;
  std::size_t best_i = 0, best_j = 0;

  for (std::ptrdiff_t i = 1; i <= m; ++i) {
    int f = kNegInf;  // horizontal gap, carried within the row
    for (std::ptrdiff_t d = -b; d <= b; ++d) {
      const std::ptrdiff_t j = i + d;
      const auto col = static_cast<std::size_t>(d + b);
      if (j < 1 || j > n) {
        h_cur[col] = 0;
        e_cur[col] = kNegInf;
        continue;
      }
      ++cells;
      // In band coordinates: (i-1, j-1) is the same column; (i-1, j) is
      // column+1; (i, j-1) is column-1.
      const int diag = h_prev[col];
      const int up = col + 1 < width ? h_prev[col + 1] : kNegInf;
      const int e_up = col + 1 < width ? e_prev[col + 1] : kNegInf;
      const int left = col > 0 ? h_cur[col - 1] : kNegInf;

      const int e = std::max(up == kNegInf ? kNegInf : up + scoring.gap_open,
                             e_up == kNegInf ? kNegInf
                                             : e_up + scoring.gap_extend);
      f = std::max(left == kNegInf ? kNegInf : left + scoring.gap_open,
                   f == kNegInf ? kNegInf : f + scoring.gap_extend);
      const int sub = diag + (query[static_cast<std::size_t>(i - 1)] ==
                                      subject[static_cast<std::size_t>(j - 1)]
                                  ? scoring.match
                                  : scoring.mismatch);
      const int h = std::max({0, sub, e, f});
      h_cur[col] = h;
      e_cur[col] = e;
      if (h > best.score) {
        best.score = h;
        best_i = static_cast<std::size_t>(i);
        best_j = static_cast<std::size_t>(j);
      }
    }
    std::swap(h_prev, h_cur);
    std::swap(e_prev, e_cur);
  }

  best.cells = cells;
  best.query_end = best_i;
  best.subject_end = best_j;
  const auto span = static_cast<std::size_t>(best.score / scoring.match);
  best.query_begin = best_i >= span ? best_i - span : 0;
  best.subject_begin = best_j >= span ? best_j - span : 0;
  return best;
}

}  // namespace oddci::workload

#include "workload/sequence.hpp"

#include <stdexcept>

namespace oddci::workload {

std::uint8_t dna_code(char base) {
  switch (base) {
    case 'A':
    case 'a':
      return 0;
    case 'C':
    case 'c':
      return 1;
    case 'G':
    case 'g':
      return 2;
    case 'T':
    case 't':
      return 3;
    default:
      return 0xFF;
  }
}

char dna_char(std::uint8_t code) {
  if (code > 3) {
    throw std::invalid_argument("dna_char: code out of range");
  }
  return kDnaAlphabet[code];
}

bool is_valid_dna(std::string_view s) {
  for (char c : s) {
    if (dna_code(c) == 0xFF) return false;
  }
  return true;
}

std::vector<std::uint8_t> encode_dna(std::string_view s) {
  std::vector<std::uint8_t> out;
  out.reserve(s.size());
  for (char c : s) {
    const std::uint8_t code = dna_code(c);
    if (code == 0xFF) {
      throw std::invalid_argument("encode_dna: non-ACGT character");
    }
    out.push_back(code);
  }
  return out;
}

std::string reverse_complement(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (auto it = s.rbegin(); it != s.rend(); ++it) {
    const std::uint8_t code = dna_code(*it);
    if (code == 0xFF) {
      throw std::invalid_argument("reverse_complement: non-ACGT character");
    }
    out.push_back(dna_char(static_cast<std::uint8_t>(3 - code)));
  }
  return out;
}

std::string SequenceGenerator::random_dna(std::size_t length) {
  std::string s;
  s.resize(length);
  for (auto& c : s) {
    c = kDnaAlphabet[rng_.uniform_u64(4)];
  }
  return s;
}

std::string SequenceGenerator::mutate(std::string_view source,
                                      double substitution_rate,
                                      double indel_rate) {
  if (substitution_rate < 0.0 || substitution_rate > 1.0 || indel_rate < 0.0 ||
      indel_rate > 1.0) {
    throw std::invalid_argument("mutate: rates must be in [0,1]");
  }
  std::string out;
  out.reserve(source.size() + source.size() / 8);
  for (char c : source) {
    if (rng_.bernoulli(indel_rate)) {
      if (rng_.bernoulli(0.5)) {
        // Insertion: emit a random base, then the original.
        out.push_back(kDnaAlphabet[rng_.uniform_u64(4)]);
      } else {
        // Deletion: skip the original base.
        continue;
      }
    }
    if (rng_.bernoulli(substitution_rate)) {
      const std::uint8_t original = dna_code(c);
      // Pick one of the three *other* bases.
      const auto shift = 1 + rng_.uniform_u64(3);
      out.push_back(dna_char(static_cast<std::uint8_t>(
          (original + shift) & 0x3)));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::vector<std::string> SequenceGenerator::random_database(
    std::size_t count, std::size_t min_length, std::size_t max_length) {
  if (min_length == 0 || max_length < min_length) {
    throw std::invalid_argument("random_database: bad length range");
  }
  std::vector<std::string> db;
  db.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t len =
        min_length + rng_.uniform_u64(max_length - min_length + 1);
    db.push_back(random_dna(len));
  }
  return db;
}

}  // namespace oddci::workload

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// Minimal FASTA reader/writer — the interchange format the BLAST workload
/// uses for queries and databases (as the NCBI toolkit does).
namespace oddci::workload {

struct FastaRecord {
  std::string id;           ///< first token after '>'
  std::string description;  ///< remainder of the header line
  std::string sequence;
};

/// Parse FASTA text. Throws std::runtime_error on structural errors
/// (sequence data before any header, empty record).
[[nodiscard]] std::vector<FastaRecord> parse_fasta(const std::string& text);

/// Serialize records, wrapping sequence lines at `width` characters.
[[nodiscard]] std::string write_fasta(const std::vector<FastaRecord>& records,
                                      std::size_t width = 70);

/// Read/parse a file. Throws std::runtime_error if unreadable.
[[nodiscard]] std::vector<FastaRecord> load_fasta_file(
    const std::string& path);

void save_fasta_file(const std::string& path,
                     const std::vector<FastaRecord>& records,
                     std::size_t width = 70);

}  // namespace oddci::workload

#pragma once

#include <cstdint>
#include <string_view>

/// Pairwise local alignment: full Smith-Waterman with affine gaps, plus the
/// X-drop extensions (ungapped and banded gapped) used by the seeded search.
namespace oddci::workload {

/// Nucleotide scoring scheme. Defaults follow blastn-style megablast
/// parameters (match +2, mismatch -3, gap open -5, gap extend -2).
struct Scoring {
  int match = 2;
  int mismatch = -3;
  int gap_open = -5;    ///< cost of opening a gap (applied to first gap base)
  int gap_extend = -2;  ///< cost per additional gap base

  void validate() const;  ///< throws std::invalid_argument on nonsense
};

struct AlignmentResult {
  int score = 0;
  /// Half-open local alignment spans [begin, end) in query and subject.
  std::size_t query_begin = 0;
  std::size_t query_end = 0;
  std::size_t subject_begin = 0;
  std::size_t subject_end = 0;
  /// Dynamic-programming cells evaluated — the workload-cost unit used by
  /// the device-performance model.
  std::uint64_t cells = 0;
};

/// Full Smith-Waterman with affine gaps over the complete DP matrix.
/// O(|query|*|subject|) time, O(|subject|) space.
[[nodiscard]] AlignmentResult smith_waterman(std::string_view query,
                                             std::string_view subject,
                                             const Scoring& scoring = {});

/// Ungapped X-drop extension from an exact seed match of length `seed_len`
/// anchored at query[q_pos], subject[s_pos]. Extends both directions until
/// the running score drops more than `x_drop` below the best seen.
[[nodiscard]] AlignmentResult ungapped_extend(std::string_view query,
                                              std::string_view subject,
                                              std::size_t q_pos,
                                              std::size_t s_pos,
                                              std::size_t seed_len,
                                              const Scoring& scoring,
                                              int x_drop);

/// Banded gapped Smith-Waterman constrained to +-`band` diagonals around the
/// anchor diagonal, over the window implied by the ungapped hit. Used as the
/// refinement stage of the seeded search.
[[nodiscard]] AlignmentResult banded_align(std::string_view query,
                                           std::string_view subject,
                                           const Scoring& scoring, int band);

}  // namespace oddci::workload

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

/// Nucleotide sequence utilities for the BLAST-like workload.
///
/// The paper's STB micro-benchmarks ran NCBI BLAST over protein/DNA
/// databases. We reproduce the workload with a genuine local-alignment
/// engine over synthetic DNA; sequences are plain `std::string`s over the
/// alphabet {A, C, G, T} with a 2-bit packed encoding for k-mer indexing.
namespace oddci::workload {

inline constexpr std::string_view kDnaAlphabet = "ACGT";

/// Map base -> 2-bit code. Returns 0xFF for non-ACGT characters.
[[nodiscard]] std::uint8_t dna_code(char base);

/// Inverse of dna_code for codes 0..3.
[[nodiscard]] char dna_char(std::uint8_t code);

/// True iff every character of `s` is one of A/C/G/T.
[[nodiscard]] bool is_valid_dna(std::string_view s);

/// Encode to 2-bit codes; throws std::invalid_argument on non-ACGT input.
[[nodiscard]] std::vector<std::uint8_t> encode_dna(std::string_view s);

/// Reverse complement (A<->T, C<->G, reversed).
[[nodiscard]] std::string reverse_complement(std::string_view s);

/// Deterministic synthetic-sequence generator.
class SequenceGenerator {
 public:
  explicit SequenceGenerator(std::uint64_t seed) : rng_(seed) {}

  /// Uniform random DNA of the given length.
  [[nodiscard]] std::string random_dna(std::size_t length);

  /// Copy of `source` with point substitutions at `substitution_rate` and
  /// single-base indels at `indel_rate` (both per-position probabilities).
  /// Used to plant homologous sequences a search should find.
  [[nodiscard]] std::string mutate(std::string_view source,
                                   double substitution_rate,
                                   double indel_rate);

  /// A database of `count` random sequences with lengths drawn uniformly
  /// from [min_length, max_length].
  [[nodiscard]] std::vector<std::string> random_database(
      std::size_t count, std::size_t min_length, std::size_t max_length);

  util::Random& rng() { return rng_; }

 private:
  util::Random rng_;
};

}  // namespace oddci::workload

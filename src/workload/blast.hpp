#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "workload/alignment.hpp"

/// Seeded local-alignment search in the style of NCBI blastn: exact k-mer
/// seeding against an indexed database, ungapped X-drop extension, banded
/// gapped refinement, Karlin-Altschul significance estimates.
namespace oddci::workload {

struct BlastParams {
  std::size_t word_size = 11;    ///< seed length (blastn default)
  int x_drop_ungapped = 20;      ///< X-drop for ungapped extension
  int gapped_trigger = 25;       ///< ungapped score that triggers gapped ext.
  int band = 16;                 ///< half-band width for gapped refinement
  int min_report_score = 30;     ///< minimum gapped score to report
  std::size_t max_hits = 100;    ///< hit-list cap (best kept)
  Scoring scoring;

  void validate() const;
};

/// Pre-indexed subject database.
class BlastDatabase {
 public:
  /// Builds a k-mer index over `sequences`. Throws on empty database,
  /// non-ACGT content, or word sizes outside [4, 31].
  BlastDatabase(std::vector<std::string> sequences, std::size_t word_size);

  [[nodiscard]] std::size_t size() const { return sequences_.size(); }
  [[nodiscard]] const std::string& sequence(std::size_t i) const {
    return sequences_.at(i);
  }
  [[nodiscard]] std::uint64_t total_residues() const {
    return total_residues_;
  }
  [[nodiscard]] std::size_t word_size() const { return word_size_; }

  struct Posting {
    std::uint32_t sequence;
    std::uint32_t position;
  };

  /// Postings for a packed k-mer key; empty span if absent.
  [[nodiscard]] const std::vector<Posting>* lookup(std::uint64_t key) const;

  /// Pack `word_size` bases starting at s[pos] into a 2-bit key.
  [[nodiscard]] static std::uint64_t pack_word(const std::string& s,
                                               std::size_t pos,
                                               std::size_t word_size);

 private:
  std::vector<std::string> sequences_;
  std::size_t word_size_;
  std::uint64_t total_residues_ = 0;
  std::unordered_map<std::uint64_t, std::vector<Posting>> index_;
};

struct BlastHit {
  std::uint32_t subject = 0;
  int score = 0;
  double bit_score = 0.0;
  double evalue = 0.0;
  std::size_t query_begin = 0, query_end = 0;
  std::size_t subject_begin = 0, subject_end = 0;
};

struct BlastSearchStats {
  std::uint64_t words_looked_up = 0;
  std::uint64_t seed_hits = 0;
  std::uint64_t ungapped_extensions = 0;
  std::uint64_t gapped_extensions = 0;
  std::uint64_t cells = 0;  ///< DP + extension cells (workload-cost unit)
};

struct BlastResult {
  std::vector<BlastHit> hits;  ///< sorted by descending score
  BlastSearchStats stats;
};

/// Run a seeded search of `query` against `database`.
/// Throws std::invalid_argument if the query is shorter than the word size
/// or the params' word size differs from the database index.
[[nodiscard]] BlastResult blast_search(const std::string& query,
                                       const BlastDatabase& database,
                                       const BlastParams& params = {});

/// Karlin-Altschul significance for nucleotide scoring (blastn-style
/// constants): bit score and E-value for a raw score against a search space
/// of `query_len * db_residues`.
[[nodiscard]] double bit_score(int raw_score);
[[nodiscard]] double expect_value(int raw_score, std::uint64_t query_len,
                                  std::uint64_t db_residues);

}  // namespace oddci::workload

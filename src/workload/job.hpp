#pragma once

#include <string>
#include <vector>

#include "util/quantity.hpp"
#include "util/rng.hpp"

/// The paper's MTC application model: a job is a tuple J = (I, n, T, R)
/// where I is the image size in bits, n the number of independent tasks,
/// T = {t_1..t_n} the tasks (each t = (s, p): input size in bits and
/// processing time on a reference set-top box... in our formulation p is
/// expressed on the *reference PC* and scaled by device profiles), and
/// R = {r_1..r_n} the result sizes in bits.
namespace oddci::workload {

struct Task {
  util::Bits input_size;    ///< t.s — bits fetched from the Backend (0 for
                            ///< parametric applications)
  util::Bits result_size;   ///< r — bits returned to the Backend
  double reference_seconds; ///< t.p — processing time on the reference node
};

struct Job {
  std::string name;
  util::Bits image_size;  ///< I — the application image broadcast via carousel
  std::vector<Task> tasks;

  [[nodiscard]] std::size_t task_count() const { return tasks.size(); }
  [[nodiscard]] double avg_input_bits() const;
  [[nodiscard]] double avg_result_bits() const;
  [[nodiscard]] double avg_reference_seconds() const;
  [[nodiscard]] double total_reference_seconds() const;

  /// Throws std::invalid_argument if the job is malformed (no tasks,
  /// non-positive image, negative task fields).
  void validate() const;
};

/// Suitability Φ = (δ · p̄) / (s + r): compute per unit of communication.
/// The lower the value, the less suitable the application for an OddCI-DTV
/// (communication-heavy relative to compute). See analytical/models.hpp for
/// why this is the *corrected* orientation of the paper's printed formula.
[[nodiscard]] double suitability(const Job& job, util::BitRate delta);

/// Build a job with n identical tasks.
[[nodiscard]] Job make_uniform_job(const std::string& name,
                                   util::Bits image_size, std::size_t n,
                                   util::Bits input_size,
                                   util::Bits result_size,
                                   double reference_seconds);

/// Build a job whose average task matches a target suitability Φ given the
/// direct-channel capacity δ and the per-task payload (s + r):
/// p̄ = Φ · (s + r) / δ. Used by the Figure 6/7 sweeps.
[[nodiscard]] Job make_job_for_suitability(const std::string& name,
                                           util::Bits image_size,
                                           std::size_t n,
                                           util::Bits payload_bits,
                                           util::BitRate delta, double phi);

/// Build a job with lognormally distributed task durations around
/// `median_reference_seconds` with the given sigma (heterogeneity study).
[[nodiscard]] Job make_lognormal_job(const std::string& name,
                                     util::Bits image_size, std::size_t n,
                                     util::Bits input_size,
                                     util::Bits result_size,
                                     double median_reference_seconds,
                                     double sigma, util::Random& rng);

}  // namespace oddci::workload

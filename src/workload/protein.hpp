#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/rng.hpp"
#include "workload/alignment.hpp"

/// Protein alignment support: the 20-letter amino-acid alphabet and the
/// BLOSUM62 substitution matrix (the paper's prototype ran protein BLAST —
/// "amino-acid sequences of different proteins").
namespace oddci::workload {

inline constexpr std::string_view kAminoAcids = "ARNDCQEGHILKMFPSTWYV";

/// Index of an amino acid in kAminoAcids order; 0xFF for invalid letters.
[[nodiscard]] std::uint8_t amino_index(char residue);

[[nodiscard]] bool is_valid_protein(std::string_view s);

/// BLOSUM62 substitution score between two residues.
/// Throws std::invalid_argument on non-amino-acid input.
[[nodiscard]] int blosum62(char a, char b);

/// Protein gap penalties (BLAST defaults: existence 11, extension 1).
struct ProteinScoring {
  int gap_open = -11;
  int gap_extend = -1;

  void validate() const;
};

/// Full local alignment under BLOSUM62 with affine gaps.
/// O(|query|*|subject|) time, O(|subject|) space.
[[nodiscard]] AlignmentResult smith_waterman_protein(
    std::string_view query, std::string_view subject,
    const ProteinScoring& scoring = {});

/// Synthetic protein sequences with realistic residue frequencies
/// (approximate Robinson-Robinson background distribution).
class ProteinGenerator {
 public:
  explicit ProteinGenerator(std::uint64_t seed);

  [[nodiscard]] std::string random_protein(std::size_t length);

  /// Point-mutate: each residue substituted with `rate` probability; the
  /// substitute is drawn from the background distribution.
  [[nodiscard]] std::string mutate(std::string_view source, double rate);

 private:
  util::Random rng_;
  std::array<double, 20> cumulative_{};
};

}  // namespace oddci::workload

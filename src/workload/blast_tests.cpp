#include "workload/blast_tests.hpp"

namespace oddci::workload {

double BlastTestSpec::modelled_cells() const {
  return static_cast<double>(query_length) *
         static_cast<double>(db_residues());
}

double BlastTestSpec::reference_pc_seconds() const {
  return modelled_cells() / kReferencePcCellsPerSecond;
}

std::vector<BlastTestSpec> table2_specs() {
  // Problem sizes chosen so that modelled reference-PC time equals the
  // paper's STB-in-use time divided by the measured 20.6x slowdown.
  // Paper columns (in-use, standby) from Table II.
  std::vector<BlastTestSpec> specs = {
      // id  category    qlen  dbseq  avglen remote  in-use     standby
      {1, "small-db", 300, 27, 1000, false, 3.338, 1.356},
      {2, "small-db", 300, 17, 1000, false, 2.102, 1.333},
      {3, "small-db", 500, 25, 1007, false, 5.185, 3.208},
      {4, "small-db", 100, 43, 101, false, 0.179, 0.117},
      {5, "small-db", 100, 32, 101, false, 0.133, 0.116},
      {6, "small-db", 100, 42, 101, false, 0.175, 0.116},
      {7, "small-db", 250, 10, 996, false, 1.026, 0.612},
      {8, "small-db", 250, 9, 1018, false, 0.944, 0.610},
      {9, "small-db", 250, 16, 997, false, 1.642, 0.090},
      {10, "large-db", 100, 43, 100, false, 0.177, 0.118},
      {11, "large-db", 5000, 4521, 1000, false, 9314.247, 6315.410},
      {12, "large-db", 10000, 9431, 1000, false, 38858.298, 26973.262},
  };
  return specs;
}

std::vector<BlastTestSpec> table3_specs() {
  // Remote BLASTCL3 runs: the query travels over the return channel to a
  // provisioned server; local CPU is only involved in I/O. The paper's
  // absolute numbers are unreadable in our source; the specs exercise the
  // same code path with three query sizes.
  std::vector<BlastTestSpec> specs = {
      {13, "remote", 500, 100000, 1000, true, 0.0, 0.0},
      {14, "remote", 2000, 100000, 1000, true, 0.0, 0.0},
      {15, "remote", 5000, 100000, 1000, true, 0.0, 0.0},
  };
  return specs;
}

}  // namespace oddci::workload

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "workload/alignment.hpp"

/// Full Smith-Waterman with traceback: reconstructs the actual alignment
/// (gapped strings + CIGAR), not just the score. O(m*n) memory — intended
/// for result *presentation* on hits the seeded search found, not for
/// database scans.
namespace oddci::workload {

struct Alignment {
  AlignmentResult summary;
  std::string query_aligned;    ///< query with '-' for gaps
  std::string subject_aligned;  ///< subject with '-' for gaps
  std::string midline;          ///< '|' match, ' ' mismatch/gap
  std::string cigar;            ///< e.g. "12M1I30M2D5M" (SAM semantics)

  [[nodiscard]] std::size_t matches() const;
  [[nodiscard]] std::size_t mismatches() const;
  [[nodiscard]] std::size_t gaps() const;
  [[nodiscard]] double identity() const;  ///< matches / alignment columns
};

/// Local alignment with traceback over nucleotide sequences.
/// Throws std::invalid_argument if m*n exceeds `max_cells` (default 64M:
/// ~8k x 8k) to protect against accidental quadratic-memory blowups.
[[nodiscard]] Alignment smith_waterman_traceback(
    std::string_view query, std::string_view subject,
    const Scoring& scoring = {}, std::uint64_t max_cells = 64ull << 20);

/// Render a BLAST-style pairwise alignment block (for reports/examples).
[[nodiscard]] std::string format_alignment(const Alignment& alignment,
                                           std::size_t width = 60);

}  // namespace oddci::workload

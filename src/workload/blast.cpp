#include "workload/blast.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "workload/sequence.hpp"

namespace oddci::workload {

namespace {
// Karlin-Altschul parameters for match +2 / mismatch -3 (approximate blastn
// values; adequate for ranking and reporting in a synthetic workload).
constexpr double kLambda = 0.625;
constexpr double kK = 0.41;
constexpr double kLn2 = 0.6931471805599453;
}  // namespace

void BlastParams::validate() const {
  scoring.validate();
  if (word_size < 4 || word_size > 31) {
    throw std::invalid_argument("BlastParams: word_size must be in [4,31]");
  }
  if (x_drop_ungapped <= 0 || gapped_trigger <= 0 || band <= 0 ||
      min_report_score <= 0 || max_hits == 0) {
    throw std::invalid_argument("BlastParams: non-positive parameter");
  }
}

std::uint64_t BlastDatabase::pack_word(const std::string& s, std::size_t pos,
                                       std::size_t word_size) {
  std::uint64_t key = 0;
  for (std::size_t k = 0; k < word_size; ++k) {
    const std::uint8_t code = dna_code(s[pos + k]);
    if (code == 0xFF) {
      throw std::invalid_argument("pack_word: non-ACGT character");
    }
    key = (key << 2) | code;
  }
  return key;
}

BlastDatabase::BlastDatabase(std::vector<std::string> sequences,
                             std::size_t word_size)
    : sequences_(std::move(sequences)), word_size_(word_size) {
  if (sequences_.empty()) {
    throw std::invalid_argument("BlastDatabase: empty database");
  }
  if (word_size_ < 4 || word_size_ > 31) {
    throw std::invalid_argument("BlastDatabase: word_size must be in [4,31]");
  }
  for (std::size_t i = 0; i < sequences_.size(); ++i) {
    const std::string& s = sequences_[i];
    if (!is_valid_dna(s)) {
      throw std::invalid_argument("BlastDatabase: non-ACGT sequence");
    }
    total_residues_ += s.size();
    if (s.size() < word_size_) continue;
    // Rolling 2-bit pack over the sequence.
    const std::uint64_t mask =
        word_size_ == 32 ? ~0ULL : ((1ULL << (2 * word_size_)) - 1);
    std::uint64_t key = 0;
    for (std::size_t p = 0; p < s.size(); ++p) {
      key = ((key << 2) | dna_code(s[p])) & mask;
      if (p + 1 >= word_size_) {
        index_[key].push_back(Posting{
            static_cast<std::uint32_t>(i),
            static_cast<std::uint32_t>(p + 1 - word_size_)});
      }
    }
  }
}

const std::vector<BlastDatabase::Posting>* BlastDatabase::lookup(
    std::uint64_t key) const {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : &it->second;
}

double bit_score(int raw_score) {
  return (kLambda * raw_score - std::log(kK)) / kLn2;
}

double expect_value(int raw_score, std::uint64_t query_len,
                    std::uint64_t db_residues) {
  const double search_space =
      static_cast<double>(query_len) * static_cast<double>(db_residues);
  return kK * search_space * std::exp(-kLambda * raw_score);
}

BlastResult blast_search(const std::string& query,
                         const BlastDatabase& database,
                         const BlastParams& params) {
  params.validate();
  if (params.word_size != database.word_size()) {
    throw std::invalid_argument(
        "blast_search: params word_size differs from database index");
  }
  if (query.size() < params.word_size) {
    throw std::invalid_argument("blast_search: query shorter than word size");
  }
  if (!is_valid_dna(query)) {
    throw std::invalid_argument("blast_search: non-ACGT query");
  }

  BlastResult result;
  BlastSearchStats& st = result.stats;

  // Best ungapped hit per (subject, diagonal) to avoid re-extending the same
  // alignment from every seed along it. diagonal = s_pos - q_pos + qlen.
  // For each subject we remember, per diagonal, the query end of the last
  // extension; seeds inside an already-extended region are skipped.
  std::unordered_map<std::uint64_t, std::size_t> diag_extent;
  auto diag_key = [&](std::uint32_t subject, std::size_t q_pos,
                      std::size_t s_pos) {
    const std::uint64_t diag =
        static_cast<std::uint64_t>(s_pos + query.size() - q_pos);
    return (static_cast<std::uint64_t>(subject) << 40) ^ diag;
  };

  // Best gapped hit per subject.
  std::unordered_map<std::uint32_t, BlastHit> best_per_subject;

  const std::uint64_t mask = (1ULL << (2 * params.word_size)) - 1;
  std::uint64_t key = 0;
  for (std::size_t p = 0; p < query.size(); ++p) {
    key = ((key << 2) | dna_code(query[p])) & mask;
    if (p + 1 < params.word_size) continue;
    const std::size_t q_pos = p + 1 - params.word_size;
    ++st.words_looked_up;
    const auto* postings = database.lookup(key);
    if (postings == nullptr) continue;

    for (const auto& post : *postings) {
      ++st.seed_hits;
      const std::uint64_t dk = diag_key(post.sequence, q_pos, post.position);
      auto extent_it = diag_extent.find(dk);
      if (extent_it != diag_extent.end() && q_pos < extent_it->second) {
        continue;  // inside a previously extended region on this diagonal
      }

      const std::string& subject = database.sequence(post.sequence);
      ++st.ungapped_extensions;
      const AlignmentResult ungapped =
          ungapped_extend(query, subject, q_pos, post.position,
                          params.word_size, params.scoring,
                          params.x_drop_ungapped);
      st.cells += ungapped.cells;
      diag_extent[dk] = ungapped.query_end;

      if (ungapped.score < params.gapped_trigger) continue;

      // Gapped refinement over a window around the ungapped hit.
      const std::size_t margin = static_cast<std::size_t>(params.band) * 2;
      const std::size_t qb =
          ungapped.query_begin > margin ? ungapped.query_begin - margin : 0;
      const std::size_t qe =
          std::min(query.size(), ungapped.query_end + margin);
      const std::size_t sb = ungapped.subject_begin > margin
                                 ? ungapped.subject_begin - margin
                                 : 0;
      const std::size_t se =
          std::min(subject.size(), ungapped.subject_end + margin);

      ++st.gapped_extensions;
      const AlignmentResult gapped = banded_align(
          std::string_view(query).substr(qb, qe - qb),
          std::string_view(subject).substr(sb, se - sb), params.scoring,
          params.band);
      st.cells += gapped.cells;

      const int score = std::max(gapped.score, ungapped.score);
      if (score < params.min_report_score) continue;

      BlastHit hit;
      hit.subject = post.sequence;
      hit.score = score;
      hit.bit_score = bit_score(score);
      hit.evalue =
          expect_value(score, query.size(), database.total_residues());
      hit.query_begin = qb + gapped.query_begin;
      hit.query_end = qb + gapped.query_end;
      hit.subject_begin = sb + gapped.subject_begin;
      hit.subject_end = sb + gapped.subject_end;

      auto best_it = best_per_subject.find(post.sequence);
      if (best_it == best_per_subject.end() ||
          best_it->second.score < hit.score) {
        best_per_subject[post.sequence] = hit;
      }
    }
  }

  result.hits.reserve(best_per_subject.size());
  for (const auto& [subject, hit] : best_per_subject) {
    result.hits.push_back(hit);
  }
  std::sort(result.hits.begin(), result.hits.end(),
            [](const BlastHit& a, const BlastHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.subject < b.subject;
            });
  if (result.hits.size() > params.max_hits) {
    result.hits.resize(params.max_hits);
  }
  return result;
}

}  // namespace oddci::workload

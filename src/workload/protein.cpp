#include "workload/protein.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace oddci::workload {

namespace {

// BLOSUM62, rows/cols in kAminoAcids order: A R N D C Q E G H I L K M F P S
// T W Y V.
constexpr int kBlosum62[20][20] = {
    // A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    {4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0},
    {-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3},
    {-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3},
    {-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3},
    {0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1},
    {-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2},
    {-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2},
    {0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3},
    {-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3},
    {-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3},
    {-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1},
    {-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2},
    {-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1},
    {-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1},
    {-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2},
    {1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2},
    {0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0},
    {-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3},
    {-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1},
    {0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4},
};

// Approximate Robinson-Robinson residue background frequencies, in
// kAminoAcids order (A R N D C Q E G H I L K M F P S T W Y V).
constexpr double kBackground[20] = {
    0.078, 0.051, 0.045, 0.054, 0.019, 0.043, 0.063, 0.074, 0.022, 0.051,
    0.090, 0.057, 0.022, 0.039, 0.052, 0.071, 0.058, 0.013, 0.032, 0.066,
};

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

}  // namespace

std::uint8_t amino_index(char residue) {
  switch (residue) {
    case 'A': return 0;
    case 'R': return 1;
    case 'N': return 2;
    case 'D': return 3;
    case 'C': return 4;
    case 'Q': return 5;
    case 'E': return 6;
    case 'G': return 7;
    case 'H': return 8;
    case 'I': return 9;
    case 'L': return 10;
    case 'K': return 11;
    case 'M': return 12;
    case 'F': return 13;
    case 'P': return 14;
    case 'S': return 15;
    case 'T': return 16;
    case 'W': return 17;
    case 'Y': return 18;
    case 'V': return 19;
    default: return 0xFF;
  }
}

bool is_valid_protein(std::string_view s) {
  for (char c : s) {
    if (amino_index(c) == 0xFF) return false;
  }
  return true;
}

int blosum62(char a, char b) {
  const std::uint8_t i = amino_index(a);
  const std::uint8_t j = amino_index(b);
  if (i == 0xFF || j == 0xFF) {
    throw std::invalid_argument("blosum62: non-amino-acid residue");
  }
  return kBlosum62[i][j];
}

void ProteinScoring::validate() const {
  if (gap_open >= 0 || gap_extend >= 0) {
    throw std::invalid_argument(
        "ProteinScoring: gap penalties must be negative");
  }
}

AlignmentResult smith_waterman_protein(std::string_view query,
                                       std::string_view subject,
                                       const ProteinScoring& scoring) {
  scoring.validate();
  AlignmentResult best;
  if (query.empty() || subject.empty()) return best;
  if (!is_valid_protein(query) || !is_valid_protein(subject)) {
    throw std::invalid_argument("smith_waterman_protein: invalid residue");
  }

  const std::size_t m = query.size();
  const std::size_t n = subject.size();

  std::vector<int> h_prev(n + 1, 0), h_cur(n + 1, 0);
  std::vector<int> e_prev(n + 1, kNegInf), e_cur(n + 1, kNegInf);

  std::size_t best_i = 0, best_j = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    int f = kNegInf;
    const std::uint8_t qi = amino_index(query[i - 1]);
    for (std::size_t j = 1; j <= n; ++j) {
      e_cur[j] = std::max(h_prev[j] + scoring.gap_open,
                          e_prev[j] + scoring.gap_extend);
      f = std::max(h_cur[j - 1] + scoring.gap_open, f + scoring.gap_extend);
      const int sub =
          h_prev[j - 1] + kBlosum62[qi][amino_index(subject[j - 1])];
      const int v = std::max({0, sub, e_cur[j], f});
      h_cur[j] = v;
      if (v > best.score) {
        best.score = v;
        best_i = i;
        best_j = j;
      }
    }
    std::swap(h_prev, h_cur);
    std::swap(e_prev, e_cur);
  }
  best.cells = static_cast<std::uint64_t>(m) * n;
  best.query_end = best_i;
  best.subject_end = best_j;
  return best;
}

ProteinGenerator::ProteinGenerator(std::uint64_t seed) : rng_(seed) {
  double total = 0.0;
  for (double f : kBackground) total += f;
  double acc = 0.0;
  for (std::size_t i = 0; i < 20; ++i) {
    acc += kBackground[i] / total;
    cumulative_[i] = acc;
  }
  cumulative_[19] = 1.0;
}

std::string ProteinGenerator::random_protein(std::size_t length) {
  std::string s;
  s.resize(length);
  for (auto& c : s) {
    const double u = rng_.uniform();
    std::size_t i = 0;
    while (i < 19 && u > cumulative_[i]) ++i;
    c = kAminoAcids[i];
  }
  return s;
}

std::string ProteinGenerator::mutate(std::string_view source, double rate) {
  if (rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument("ProteinGenerator: rate out of [0,1]");
  }
  std::string out(source);
  for (auto& c : out) {
    if (rng_.bernoulli(rate)) {
      const double u = rng_.uniform();
      std::size_t i = 0;
      while (i < 19 && u > cumulative_[i]) ++i;
      c = kAminoAcids[i];
    }
  }
  return out;
}

}  // namespace oddci::workload

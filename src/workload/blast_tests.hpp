#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/quantity.hpp"

/// Specifications of the paper's Section 4.4 micro-benchmarks (Tables II
/// and III): 15 BLAST runs — 9 with small databases (#1-9), 3 with large
/// databases (#10-12), and 3 remote BLASTCL3 runs (#13-15).
///
/// The paper does not disclose the exact query/database inputs, only the
/// measured wall-clock times; and the reference hardware (ST7109 STB,
/// Pentium Dual Core PC) is unavailable. We therefore (a) fix a reference-PC
/// alignment throughput (DP cells per second, representative of NCBI blastn
/// on 2006-era hardware), (b) choose per-test problem sizes whose cell
/// counts reproduce the paper's PC-side times under that throughput, and
/// (c) let the device model (20.6x in-use slowdown, 1.65x standby speedup)
/// produce the STB columns. The per-test workloads are *real* — the bench
/// executes the seeded search and reports measured host times alongside the
/// modelled reference-PC times.
namespace oddci::workload {

/// Reference-PC effective alignment throughput (DP cells per second).
/// Calibration constant: with this value, test #12's modelled PC time is
/// ~1886 s, matching the paper's 38858 s STB-in-use figure / 20.6.
inline constexpr double kReferencePcCellsPerSecond = 5.0e7;

struct BlastTestSpec {
  int id = 0;                    ///< paper test number (1..15)
  std::string category;          ///< "small-db", "large-db", "remote"
  std::size_t query_length = 0;
  std::size_t db_sequences = 0;
  std::size_t avg_sequence_length = 0;
  bool remote = false;           ///< BLASTCL3: query shipped to a server
  /// Paper-reported wall-clock seconds (reproduction targets; 0 where the
  /// source scan is illegible).
  double paper_stb_in_use_seconds = 0.0;
  double paper_stb_standby_seconds = 0.0;

  /// Effective DP-cell count model (query residues x database residues —
  /// BLASTALL's search-space scaling unit).
  [[nodiscard]] double modelled_cells() const;
  /// Modelled wall-clock on the reference PC.
  [[nodiscard]] double reference_pc_seconds() const;

  [[nodiscard]] std::uint64_t db_residues() const {
    return static_cast<std::uint64_t>(db_sequences) * avg_sequence_length;
  }
};

/// Tests #1-12 (Table II: BLASTALL, local processing).
[[nodiscard]] std::vector<BlastTestSpec> table2_specs();

/// Tests #13-15 (Table III: BLASTCL3, remote processing). The source scan
/// of the paper is illegible for Table III's numbers; the reproduction
/// targets the *structural* result instead: remote runs are network/server
/// bound, so the STB/PC gap collapses to ~1 (see EXPERIMENTS.md).
[[nodiscard]] std::vector<BlastTestSpec> table3_specs();

}  // namespace oddci::workload

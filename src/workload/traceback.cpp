#include "workload/traceback.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace oddci::workload {

std::size_t Alignment::matches() const {
  std::size_t n = 0;
  for (char c : midline) {
    if (c == '|') ++n;
  }
  return n;
}

std::size_t Alignment::mismatches() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < midline.size(); ++i) {
    if (midline[i] == ' ' && query_aligned[i] != '-' &&
        subject_aligned[i] != '-') {
      ++n;
    }
  }
  return n;
}

std::size_t Alignment::gaps() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < query_aligned.size(); ++i) {
    if (query_aligned[i] == '-' || subject_aligned[i] == '-') ++n;
  }
  return n;
}

double Alignment::identity() const {
  if (midline.empty()) return 0.0;
  return static_cast<double>(matches()) /
         static_cast<double>(midline.size());
}

namespace {

enum class Move : std::uint8_t { kStop = 0, kDiag, kUp, kLeft };

constexpr int kNegInf = std::numeric_limits<int>::min() / 4;

}  // namespace

Alignment smith_waterman_traceback(std::string_view query,
                                   std::string_view subject,
                                   const Scoring& scoring,
                                   std::uint64_t max_cells) {
  scoring.validate();
  Alignment out;
  if (query.empty() || subject.empty()) return out;

  const std::size_t m = query.size();
  const std::size_t n = subject.size();
  if (static_cast<std::uint64_t>(m) * n > max_cells) {
    throw std::invalid_argument(
        "smith_waterman_traceback: matrix exceeds max_cells");
  }

  // Full H matrix plus a move matrix; affine gaps with E/F rolling rows.
  std::vector<int> h((m + 1) * (n + 1), 0);
  std::vector<Move> moves((m + 1) * (n + 1), Move::kStop);
  std::vector<int> e_prev(n + 1, kNegInf), e_cur(n + 1, kNegInf);

  auto at = [n](std::size_t i, std::size_t j) { return i * (n + 1) + j; };

  int best = 0;
  std::size_t best_i = 0, best_j = 0;

  for (std::size_t i = 1; i <= m; ++i) {
    int f = kNegInf;
    for (std::size_t j = 1; j <= n; ++j) {
      e_cur[j] = std::max(h[at(i - 1, j)] + scoring.gap_open,
                          e_prev[j] + scoring.gap_extend);
      f = std::max(h[at(i, j - 1)] + scoring.gap_open,
                   f + scoring.gap_extend);
      const int sub = h[at(i - 1, j - 1)] +
                      (query[i - 1] == subject[j - 1] ? scoring.match
                                                      : scoring.mismatch);
      int v = 0;
      Move move = Move::kStop;
      if (sub > v) {
        v = sub;
        move = Move::kDiag;
      }
      if (e_cur[j] > v) {
        v = e_cur[j];
        move = Move::kUp;
      }
      if (f > v) {
        v = f;
        move = Move::kLeft;
      }
      h[at(i, j)] = v;
      moves[at(i, j)] = move;
      if (v > best) {
        best = v;
        best_i = i;
        best_j = j;
      }
    }
    std::swap(e_prev, e_cur);
  }

  out.summary.score = best;
  out.summary.cells = static_cast<std::uint64_t>(m) * n;
  out.summary.query_end = best_i;
  out.summary.subject_end = best_j;
  if (best == 0) return out;

  // Walk back from the maximum until a zero cell.
  std::string q_rev, s_rev, mid_rev;
  std::size_t i = best_i, j = best_j;
  while (i > 0 && j > 0 && moves[at(i, j)] != Move::kStop) {
    switch (moves[at(i, j)]) {
      case Move::kDiag:
        q_rev.push_back(query[i - 1]);
        s_rev.push_back(subject[j - 1]);
        mid_rev.push_back(query[i - 1] == subject[j - 1] ? '|' : ' ');
        --i;
        --j;
        break;
      case Move::kUp:  // gap in subject (consume query)
        q_rev.push_back(query[i - 1]);
        s_rev.push_back('-');
        mid_rev.push_back(' ');
        --i;
        break;
      case Move::kLeft:  // gap in query (consume subject)
        q_rev.push_back('-');
        s_rev.push_back(subject[j - 1]);
        mid_rev.push_back(' ');
        --j;
        break;
      case Move::kStop:
        break;
    }
  }
  out.summary.query_begin = i;
  out.summary.subject_begin = j;

  std::reverse(q_rev.begin(), q_rev.end());
  std::reverse(s_rev.begin(), s_rev.end());
  std::reverse(mid_rev.begin(), mid_rev.end());
  out.query_aligned = std::move(q_rev);
  out.subject_aligned = std::move(s_rev);
  out.midline = std::move(mid_rev);

  // CIGAR (SAM semantics: M = aligned pair, I = insertion to subject
  // i.e. query base absent from subject, D = deletion from query).
  std::ostringstream cigar;
  char op = 0;
  std::size_t run = 0;
  auto flush = [&] {
    if (run > 0) cigar << run << op;
  };
  for (std::size_t k = 0; k < out.query_aligned.size(); ++k) {
    char current;
    if (out.query_aligned[k] == '-') {
      current = 'D';
    } else if (out.subject_aligned[k] == '-') {
      current = 'I';
    } else {
      current = 'M';
    }
    if (current == op) {
      ++run;
    } else {
      flush();
      op = current;
      run = 1;
    }
  }
  flush();
  out.cigar = cigar.str();
  return out;
}

std::string format_alignment(const Alignment& alignment, std::size_t width) {
  if (width == 0) {
    throw std::invalid_argument("format_alignment: width must be > 0");
  }
  std::ostringstream os;
  os << "Score " << alignment.summary.score << ", identity "
     << static_cast<int>(alignment.identity() * 100.0 + 0.5) << "% ("
     << alignment.matches() << "/" << alignment.midline.size()
     << "), CIGAR " << alignment.cigar << "\n";
  for (std::size_t start = 0; start < alignment.query_aligned.size();
       start += width) {
    const std::size_t len =
        std::min(width, alignment.query_aligned.size() - start);
    os << "Query  " << alignment.query_aligned.substr(start, len) << "\n"
       << "       " << alignment.midline.substr(start, len) << "\n"
       << "Sbjct  " << alignment.subject_aligned.substr(start, len) << "\n";
    if (start + len < alignment.query_aligned.size()) os << "\n";
  }
  return os.str();
}

}  // namespace oddci::workload

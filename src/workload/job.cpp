#include "workload/job.hpp"

#include <cmath>
#include <stdexcept>

namespace oddci::workload {

double Job::avg_input_bits() const {
  if (tasks.empty()) return 0.0;
  double s = 0.0;
  for (const auto& t : tasks) s += static_cast<double>(t.input_size.count());
  return s / static_cast<double>(tasks.size());
}

double Job::avg_result_bits() const {
  if (tasks.empty()) return 0.0;
  double s = 0.0;
  for (const auto& t : tasks) s += static_cast<double>(t.result_size.count());
  return s / static_cast<double>(tasks.size());
}

double Job::avg_reference_seconds() const {
  if (tasks.empty()) return 0.0;
  return total_reference_seconds() / static_cast<double>(tasks.size());
}

double Job::total_reference_seconds() const {
  double s = 0.0;
  for (const auto& t : tasks) s += t.reference_seconds;
  return s;
}

void Job::validate() const {
  if (tasks.empty()) {
    throw std::invalid_argument("Job: must have at least one task");
  }
  if (image_size.count() <= 0) {
    throw std::invalid_argument("Job: image size must be positive");
  }
  for (const auto& t : tasks) {
    if (t.input_size.count() < 0 || t.result_size.count() < 0) {
      throw std::invalid_argument("Job: negative task payload");
    }
    if (t.reference_seconds <= 0.0) {
      throw std::invalid_argument("Job: task processing time must be > 0");
    }
  }
}

double suitability(const Job& job, util::BitRate delta) {
  if (delta.bps() <= 0.0) {
    throw std::invalid_argument("suitability: delta must be > 0");
  }
  const double payload = job.avg_input_bits() + job.avg_result_bits();
  const double p = job.avg_reference_seconds();
  if (p <= 0.0) {
    throw std::invalid_argument("suitability: zero average processing time");
  }
  if (payload <= 0.0) {
    // A purely parametric application with no I/O at all: infinitely
    // suitable.
    return std::numeric_limits<double>::infinity();
  }
  return delta.bps() * p / payload;
}

Job make_uniform_job(const std::string& name, util::Bits image_size,
                     std::size_t n, util::Bits input_size,
                     util::Bits result_size, double reference_seconds) {
  Job job;
  job.name = name;
  job.image_size = image_size;
  job.tasks.assign(n, Task{input_size, result_size, reference_seconds});
  job.validate();
  return job;
}

Job make_job_for_suitability(const std::string& name, util::Bits image_size,
                             std::size_t n, util::Bits payload_bits,
                             util::BitRate delta, double phi) {
  if (phi <= 0.0) {
    throw std::invalid_argument("make_job_for_suitability: phi must be > 0");
  }
  if (payload_bits.count() <= 0) {
    throw std::invalid_argument(
        "make_job_for_suitability: payload must be positive");
  }
  // Phi = delta * p / (s + r)  =>  p = Phi * (s + r) / delta.
  // Split the payload evenly between input and result.
  const double p =
      phi * static_cast<double>(payload_bits.count()) / delta.bps();
  const util::Bits half(payload_bits.count() / 2);
  const util::Bits rest(payload_bits.count() - half.count());
  return make_uniform_job(name, image_size, n, half, rest, p);
}

Job make_lognormal_job(const std::string& name, util::Bits image_size,
                       std::size_t n, util::Bits input_size,
                       util::Bits result_size,
                       double median_reference_seconds, double sigma,
                       util::Random& rng) {
  if (median_reference_seconds <= 0.0 || sigma < 0.0) {
    throw std::invalid_argument("make_lognormal_job: bad duration params");
  }
  Job job;
  job.name = name;
  job.image_size = image_size;
  job.tasks.reserve(n);
  const double mu = std::log(median_reference_seconds);
  for (std::size_t i = 0; i < n; ++i) {
    job.tasks.push_back(
        Task{input_size, result_size, rng.lognormal(mu, sigma)});
  }
  job.validate();
  return job;
}

}  // namespace oddci::workload

#include "control/static_policy.hpp"

#include <algorithm>

namespace oddci::control {

namespace {

/// The pre-engine Controller::choose_probability, bit for bit.
double margin_probability(double margin, std::size_t deficit,
                          std::size_t idle) {
  if (idle == 0) {
    // No population information yet (e.g. first wakeup right after
    // deployment): address everyone; trimming will shed the excess.
    return 1.0;
  }
  const double p =
      margin * static_cast<double>(deficit) / static_cast<double>(idle);
  return std::clamp(p, 0.0, 1.0);
}

}  // namespace

double StaticPolicy::initial_probability(
    const ControlObservation& observation) {
  return margin_probability(options_.overshoot_margin, observation.target,
                            observation.idle_pool);
}

ControlAction StaticPolicy::decide(const ControlObservation& observation) {
  ControlAction action;
  const std::size_t current = observation.members + observation.joining;
  if (current < observation.target && observation.recruiting) {
    action.probability = margin_probability(
        options_.overshoot_margin, observation.target - current,
        observation.idle_pool);
  } else if (observation.members > observation.target) {
    action.trim = observation.members - observation.target;
  }
  return action;
}

}  // namespace oddci::control

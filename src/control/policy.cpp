#include "control/policy.hpp"

#include <stdexcept>
#include <string>

#include "analytical/models.hpp"
#include "control/bandit_policy.hpp"
#include "control/proportional_policy.hpp"
#include "control/static_policy.hpp"

namespace oddci::control {

std::string_view to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kStatic: return "static";
    case EngineKind::kProportional: return "proportional";
    case EngineKind::kBandit: return "bandit";
  }
  return "unknown";
}

EngineKind engine_kind_from_string(std::string_view name) {
  if (name == "static") return EngineKind::kStatic;
  if (name == "proportional") return EngineKind::kProportional;
  if (name == "bandit") return EngineKind::kBandit;
  throw std::invalid_argument("control: unknown engine '" +
                              std::string(name) +
                              "' (static|proportional|bandit)");
}

void PolicyOptions::validate() const {
  if (monitor_interval <= sim::SimTime::zero()) {
    throw std::invalid_argument("control: monitor_interval must be > 0");
  }
  if (stale_factor <= 1.0) {
    throw std::invalid_argument("control: stale_factor must be > 1");
  }
  if (overshoot_margin <= 0.0) {
    throw std::invalid_argument("control: overshoot_margin must be > 0");
  }
  if (min_suitability < 0.0) {
    throw std::invalid_argument("control: min_suitability must be >= 0");
  }
  if (gain <= 0.0) {
    throw std::invalid_argument("control: gain must be > 0");
  }
  if (integral_gain < 0.0 || integral_cap < 0.0) {
    throw std::invalid_argument(
        "control: integral_gain and integral_cap must be >= 0");
  }
  if (max_step <= 0.0 || max_step > 1.0) {
    throw std::invalid_argument("control: max_step must be in (0, 1]");
  }
  if (trim_hysteresis < 0.0) {
    throw std::invalid_argument("control: trim_hysteresis must be >= 0");
  }
  if (arms.empty()) {
    throw std::invalid_argument("control: bandit arm set must be non-empty");
  }
  for (const double arm : arms) {
    if (arm <= 0.0) {
      throw std::invalid_argument("control: bandit arms must be > 0");
    }
  }
  if (explore < 0.0 || explore > 1.0) {
    throw std::invalid_argument("control: explore must be in [0, 1]");
  }
}

DecisionEngine::DecisionEngine(PolicyOptions options)
    : options_(std::move(options)) {}

DecisionEngine::~DecisionEngine() = default;

Admission DecisionEngine::admit(const AdmissionRequest& request) {
  // Phi admission is opt-in: with the floor at 0 this is a pure pass-through
  // (no metric increments, no trace events), keeping default runs
  // byte-identical to the pre-engine tree.
  if (options_.min_suitability <= 0.0) return Admission::kAdmit;
  double phi = analytical::suitability(
      request.input_bits, request.result_bits, request.delta,
      request.task_seconds);
  // Verified execution discount: each verified task costs verify_overhead
  // dispatches, so the effective suitability shrinks by that factor. The
  // guard keeps a malformed (< 1) factor from inflating Phi, and leaves
  // the verification-off value of exactly 1.0 a no-op.
  if (request.verify_overhead > 1.0) phi /= request.verify_overhead;
  const bool ok = phi >= options_.min_suitability;
  // Phi in parts-per-million so huge suitabilities survive the u64 arg.
  const auto phi_ppm = static_cast<std::uint64_t>(phi * 1e6);
  if (ok) {
    ++jobs_admitted_;
    if (recorder_ != nullptr) {
      recorder_->emit(request.now, obs::TraceEventKind::kControlAdmit,
                      obs::TraceComponent::kController, {}, request.tasks,
                      phi_ppm);
    }
    return Admission::kAdmit;
  }
  ++jobs_deferred_;
  if (recorder_ != nullptr) {
    recorder_->emit(request.now, obs::TraceEventKind::kControlDefer,
                    obs::TraceComponent::kController, {}, request.tasks,
                    phi_ppm);
  }
  return Admission::kDefer;
}

void DecisionEngine::forget(std::uint64_t /*instance*/) {}

void DecisionEngine::link_metrics(obs::MetricsRegistry& registry) {
  if (options_.min_suitability > 0.0) {
    registry.link_counter("control.jobs_admitted", jobs_admitted_);
    registry.link_counter("control.jobs_deferred", jobs_deferred_);
  }
}

std::unique_ptr<DecisionEngine> make_engine(PolicyOptions options) {
  options.validate();
  switch (options.engine) {
    case EngineKind::kStatic:
      return std::make_unique<StaticPolicy>(std::move(options));
    case EngineKind::kProportional:
      return std::make_unique<ProportionalPolicy>(std::move(options));
    case EngineKind::kBandit:
      return std::make_unique<BanditPolicy>(std::move(options));
  }
  throw std::invalid_argument("control: unknown engine kind");
}

}  // namespace oddci::control

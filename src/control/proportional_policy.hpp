#pragma once

#include <unordered_map>

#include "control/policy.hpp"

namespace oddci::control {

/// PI (proportional + integral) ramp of the wakeup probability toward the
/// target size.
///
/// Per decision on the recruitment path:
///   p = gain * deficit / idle_pool + integral
/// where `integral` accumulates integral_gain * deficit / idle_pool each
/// tick a residual deficit persists, clamped to integral_cap (anti-windup)
/// and reset the moment the instance overshoots. The feedforward term aims
/// the *expected* join count exactly at the deficit (the joining set
/// already counts against it, so in-flight recruits are never double
/// addressed); the integral compensates what a fixed margin overshoots
/// for — churned-away receivers and stale idle-pool entries — only when
/// the loop actually observes a shortfall. Overshoot under churn is
/// therefore bounded by binomial noise plus the accumulated integral,
/// instead of a constant (margin - 1) fraction of every deficit.
///
/// Trimming: members above target * (1 + trim_hysteresis) are shed; the
/// hysteresis band damps grow/trim oscillation when churn makes the
/// membership bounce around the target.
///
/// Deterministic: draws no randomness.
class ProportionalPolicy final : public DecisionEngine {
 public:
  explicit ProportionalPolicy(PolicyOptions options)
      : DecisionEngine(std::move(options)) {}

  [[nodiscard]] std::string_view name() const override {
    return "proportional";
  }

  [[nodiscard]] double initial_probability(
      const ControlObservation& observation) override;

  [[nodiscard]] ControlAction decide(
      const ControlObservation& observation) override;

  void forget(std::uint64_t instance) override;

  void link_metrics(obs::MetricsRegistry& registry) override;

  /// Current integral boost for an instance (0 if untracked) — test hook.
  [[nodiscard]] double integral(std::uint64_t instance) const;

 private:
  struct Loop {
    double integral = 0.0;
  };
  std::unordered_map<std::uint64_t, Loop> loops_;

  obs::Counter decisions_;
  obs::Counter wakeups_requested_;
  obs::Counter trims_requested_;
  double last_probability_ = 0.0;
};

}  // namespace oddci::control

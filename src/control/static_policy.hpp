#pragma once

#include "control/policy.hpp"

namespace oddci::control {

/// The paper's fixed rule, extracted verbatim from the pre-engine
/// Controller: p = clamp(overshoot_margin * deficit / idle_pool, 0, 1),
/// addressing everyone (p = 1) while the idle pool is unknown, and
/// trimming every confirmed member above target. Draws no randomness,
/// emits no trace events, and registers no metric cells beyond the shared
/// admission counters — a system running the default StaticPolicy is
/// event-trajectory-identical to the tree before the DecisionEngine
/// existed.
class StaticPolicy final : public DecisionEngine {
 public:
  explicit StaticPolicy(PolicyOptions options)
      : DecisionEngine(std::move(options)) {}

  [[nodiscard]] std::string_view name() const override { return "static"; }

  [[nodiscard]] double initial_probability(
      const ControlObservation& observation) override;

  [[nodiscard]] ControlAction decide(
      const ControlObservation& observation) override;
};

}  // namespace oddci::control

#include "control/proportional_policy.hpp"

#include <algorithm>

namespace oddci::control {

double ProportionalPolicy::initial_probability(
    const ControlObservation& observation) {
  // First shot is pure feedforward: no error has been observed yet, so the
  // integral contributes nothing.
  if (observation.idle_pool == 0) return 1.0;
  const double p = options_.gain * static_cast<double>(observation.target) /
                   static_cast<double>(observation.idle_pool);
  const double capped = std::min(p, options_.max_step);
  last_probability_ = std::clamp(capped, 0.0, 1.0);
  ++decisions_;
  ++wakeups_requested_;
  if (recorder_ != nullptr) {
    recorder_->emit(observation.now, obs::TraceEventKind::kControlDecision,
                    obs::TraceComponent::kController, {},
                    observation.instance,
                    static_cast<std::uint64_t>(last_probability_ * 1e6));
  }
  return last_probability_;
}

ControlAction ProportionalPolicy::decide(
    const ControlObservation& observation) {
  ControlAction action;
  ++decisions_;
  const std::size_t current = observation.members + observation.joining;
  if (current < observation.target && observation.recruiting) {
    Loop& loop = loops_[observation.instance];
    const double error =
        observation.idle_pool == 0
            ? 0.0
            : static_cast<double>(observation.target - current) /
                  static_cast<double>(observation.idle_pool);
    double p = options_.gain * error + loop.integral;
    // The persistent deficit is evidence of churn / stale idle entries:
    // boost future shots, but cap the windup so a long drought cannot
    // detonate into a full-population wakeup the moment the pool returns.
    loop.integral = std::min(loop.integral + options_.integral_gain * error,
                             options_.integral_cap);
    p = std::clamp(std::min(p, options_.max_step), 0.0, 1.0);
    last_probability_ = p;
    if (p > 0.0) ++wakeups_requested_;
    action.probability = p;
    if (recorder_ != nullptr) {
      recorder_->emit(observation.now, obs::TraceEventKind::kControlDecision,
                      obs::TraceComponent::kController, {},
                      observation.instance,
                      static_cast<std::uint64_t>(p * 1e6));
    }
  } else if (observation.members > observation.target) {
    // Overshot: the integral was too hot for the current churn regime.
    loops_[observation.instance].integral = 0.0;
    const auto allowed = static_cast<std::size_t>(
        static_cast<double>(observation.target) * options_.trim_hysteresis);
    const std::size_t over = observation.members - observation.target;
    if (over > allowed) {
      action.trim = over;
      trims_requested_ += over;
      if (recorder_ != nullptr) {
        recorder_->emit(observation.now, obs::TraceEventKind::kControlTrim,
                        obs::TraceComponent::kController, {},
                        observation.instance, over);
      }
    }
  }
  return action;
}

void ProportionalPolicy::forget(std::uint64_t instance) {
  loops_.erase(instance);
}

double ProportionalPolicy::integral(std::uint64_t instance) const {
  const auto it = loops_.find(instance);
  return it == loops_.end() ? 0.0 : it->second.integral;
}

void ProportionalPolicy::link_metrics(obs::MetricsRegistry& registry) {
  DecisionEngine::link_metrics(registry);
  registry.link_counter("control.decisions", decisions_);
  registry.link_counter("control.wakeups_requested", wakeups_requested_);
  registry.link_counter("control.trims_requested", trims_requested_);
  registry.link_probe("control.p_last",
                      [this] { return last_probability_; });
}

}  // namespace oddci::control

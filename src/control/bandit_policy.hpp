#pragma once

#include <array>
#include <unordered_map>
#include <vector>

#include "control/policy.hpp"
#include "util/rng.hpp"

namespace oddci::control {

/// Epsilon-greedy multi-armed bandit over wakeup-probability steps.
///
/// Each arm is a multiplier on the static rule's
/// overshoot_margin * deficit / idle_pool; the engine learns, separately
/// per deficit regime (large / medium / small deficit relative to the
/// target), which multiplier closes the gap fastest without overshooting.
/// After every pulled arm the next decision for the same instance scores
/// the outcome — deficit progress, minus a penalty for members above
/// target — into the (regime, arm) value table (incremental mean), then
/// selects greedily with probability 1 - explore.
///
/// Determinism: the only randomness is the private `rng_`, seeded from
/// `PolicyOptions::seed` (a named stream derived from the system seed).
/// Decisions happen exclusively on the control shard, so the draw
/// sequence — and with it the whole run — replays byte-identically per
/// (seed, shard count).
class BanditPolicy final : public DecisionEngine {
 public:
  explicit BanditPolicy(PolicyOptions options);

  [[nodiscard]] std::string_view name() const override { return "bandit"; }

  [[nodiscard]] double initial_probability(
      const ControlObservation& observation) override;

  [[nodiscard]] ControlAction decide(
      const ControlObservation& observation) override;

  void forget(std::uint64_t instance) override;

  void link_metrics(obs::MetricsRegistry& registry) override;

  /// Deficit regimes: >= 50% of target missing, >= 10%, below 10%.
  static constexpr std::size_t kRegimes = 3;

  /// Learned value of (regime, arm) — test hook.
  [[nodiscard]] double arm_value(std::size_t regime, std::size_t arm) const;

 private:
  struct ArmStats {
    double value = 0.0;
    std::uint64_t pulls = 0;
  };
  /// Outcome of the previous pull for an instance, scored on the next
  /// decision once the broadcast's effect is visible in the membership.
  struct Pending {
    std::size_t regime = 0;
    std::size_t arm = 0;
    std::size_t gap = 0;
  };

  [[nodiscard]] static std::size_t regime_of(std::size_t deficit,
                                             std::size_t target);
  [[nodiscard]] std::size_t select_arm(std::size_t regime);
  void score(std::uint64_t instance, std::size_t deficit,
             std::size_t members, std::size_t target);

  std::array<std::vector<ArmStats>, kRegimes> values_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  util::Random rng_;

  obs::Counter decisions_;
  obs::Counter wakeups_requested_;
  obs::Counter trims_requested_;
  obs::Counter arm_switches_;
  obs::Counter explorations_;
  std::size_t last_arm_ = 0;
  bool pulled_once_ = false;
  double last_probability_ = 0.0;
};

}  // namespace oddci::control

#include "control/bandit_policy.hpp"

#include <algorithm>

namespace oddci::control {

BanditPolicy::BanditPolicy(PolicyOptions options)
    : DecisionEngine(std::move(options)), rng_(options_.seed) {
  for (auto& regime : values_) regime.resize(options_.arms.size());
}

std::size_t BanditPolicy::regime_of(std::size_t deficit, std::size_t target) {
  if (target == 0) return kRegimes - 1;
  if (deficit * 2 >= target) return 0;   // >= 50% missing
  if (deficit * 10 >= target) return 1;  // >= 10% missing
  return 2;
}

std::size_t BanditPolicy::select_arm(std::size_t regime) {
  std::size_t arm;
  if (rng_.uniform() < options_.explore) {
    arm = static_cast<std::size_t>(
        rng_.uniform_u64(options_.arms.size()));
    ++explorations_;
  } else {
    arm = 0;
    const auto& stats = values_[regime];
    for (std::size_t a = 1; a < stats.size(); ++a) {
      if (stats[a].value > stats[arm].value) arm = a;
    }
  }
  if (pulled_once_ && arm != last_arm_) ++arm_switches_;
  pulled_once_ = true;
  last_arm_ = arm;
  return arm;
}

void BanditPolicy::score(std::uint64_t instance, std::size_t deficit,
                         std::size_t members, std::size_t target) {
  const auto it = pending_.find(instance);
  if (it == pending_.end()) return;
  const Pending prev = it->second;
  pending_.erase(it);
  // Progress toward the target since the pull, normalised by the gap that
  // was open then; overshoot costs double — the whole point of learning a
  // margin is to stop paying for trims.
  const double progress =
      prev.gap == 0
          ? 0.0
          : (static_cast<double>(prev.gap) - static_cast<double>(deficit)) /
                static_cast<double>(prev.gap);
  const double over =
      members > target
          ? static_cast<double>(members - target) /
                std::max(1.0, static_cast<double>(target))
          : 0.0;
  const double reward = progress - 2.0 * over;
  ArmStats& stats = values_[prev.regime][prev.arm];
  ++stats.pulls;
  stats.value += (reward - stats.value) / static_cast<double>(stats.pulls);
}

double BanditPolicy::initial_probability(
    const ControlObservation& observation) {
  ++decisions_;
  if (observation.idle_pool == 0) {
    last_probability_ = 1.0;
    return 1.0;
  }
  const std::size_t regime = regime_of(observation.target, observation.target);
  const std::size_t arm = select_arm(regime);
  const double p = std::clamp(
      options_.arms[arm] * options_.overshoot_margin *
          static_cast<double>(observation.target) /
          static_cast<double>(observation.idle_pool),
      0.0, 1.0);
  pending_[observation.instance] =
      Pending{regime, arm, observation.target};
  last_probability_ = p;
  ++wakeups_requested_;
  if (recorder_ != nullptr) {
    recorder_->emit(observation.now, obs::TraceEventKind::kControlDecision,
                    obs::TraceComponent::kController, {},
                    observation.instance,
                    static_cast<std::uint64_t>(p * 1e6));
  }
  return p;
}

ControlAction BanditPolicy::decide(const ControlObservation& observation) {
  ControlAction action;
  ++decisions_;
  const std::size_t current = observation.members + observation.joining;
  const std::size_t deficit =
      current < observation.target ? observation.target - current : 0;
  score(observation.instance, deficit, observation.members,
        observation.target);
  if (deficit > 0 && observation.recruiting) {
    if (observation.idle_pool == 0) return action;
    const std::size_t regime = regime_of(deficit, observation.target);
    const std::size_t arm = select_arm(regime);
    const double p = std::clamp(
        options_.arms[arm] * options_.overshoot_margin *
            static_cast<double>(deficit) /
            static_cast<double>(observation.idle_pool),
        0.0, 1.0);
    pending_[observation.instance] = Pending{regime, arm, deficit};
    last_probability_ = p;
    if (p > 0.0) ++wakeups_requested_;
    action.probability = p;
    if (recorder_ != nullptr) {
      recorder_->emit(observation.now, obs::TraceEventKind::kControlDecision,
                      obs::TraceComponent::kController, {},
                      observation.instance,
                      static_cast<std::uint64_t>(p * 1e6));
    }
  } else if (observation.members > observation.target) {
    const std::size_t over = observation.members - observation.target;
    action.trim = over;
    trims_requested_ += over;
    if (recorder_ != nullptr) {
      recorder_->emit(observation.now, obs::TraceEventKind::kControlTrim,
                      obs::TraceComponent::kController, {},
                      observation.instance, over);
    }
  }
  return action;
}

void BanditPolicy::forget(std::uint64_t instance) {
  pending_.erase(instance);
}

double BanditPolicy::arm_value(std::size_t regime, std::size_t arm) const {
  return values_.at(regime).at(arm).value;
}

void BanditPolicy::link_metrics(obs::MetricsRegistry& registry) {
  DecisionEngine::link_metrics(registry);
  registry.link_counter("control.decisions", decisions_);
  registry.link_counter("control.wakeups_requested", wakeups_requested_);
  registry.link_counter("control.trims_requested", trims_requested_);
  registry.link_counter("control.arm_switches", arm_switches_);
  registry.link_counter("control.explorations", explorations_);
  registry.link_probe("control.p_last",
                      [this] { return last_probability_; });
}

}  // namespace oddci::control

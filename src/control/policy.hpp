#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"
#include "util/quantity.hpp"

/// Pluggable control-plane decision engines.
///
/// The Controller's maintenance loop consolidates heartbeats into a
/// membership view and then has to make policy decisions: what wakeup
/// probability to put on the air for a fresh instance, whether to
/// retransmit (recompose) for one that lost members, how many excess
/// members to shed via unicast resets, and whether to admit a job at all
/// given its suitability Phi = delta * p / (s + r) (Section 5.2.2 of the
/// paper, in the repo's operational orientation — see
/// analytical/models.hpp).
///
/// Those decisions live behind the `DecisionEngine` interface: each
/// maintenance tick the Controller builds a `ControlObservation` from its
/// telemetry and asks the engine for a `ControlAction`. Three engines
/// ship:
///  * `StaticPolicy`      — the paper's fixed overshoot-margin rule,
///                          bit-for-bit the pre-engine Controller
///                          behaviour (the default);
///  * `ProportionalPolicy`— a PI ramp of p toward the target size with
///                          churn compensation via the integral term;
///  * `BanditPolicy`      — epsilon-greedy arm selection over margin
///                          multipliers, one value table per deficit
///                          regime.
///
/// Determinism contract: engines are only ever invoked from the control
/// shard (the Controller and Backend live on shard 0 of the sharded
/// kernel), so decision state needs no locking, and a policy that draws
/// randomness must draw it exclusively from `PolicyOptions::seed` — a
/// dedicated named stream (util::stream_seed) derived from the system
/// seed, never from the population's RNG sequence. Under those rules a
/// run replays byte-identically per (seed, shard count).
namespace oddci::control {

/// Which decision engine drives the control loop.
enum class EngineKind : std::uint8_t {
  kStatic = 0,
  kProportional,
  kBandit,
};

[[nodiscard]] std::string_view to_string(EngineKind kind);
/// Inverse of to_string; throws std::invalid_argument for unknown names.
[[nodiscard]] EngineKind engine_kind_from_string(std::string_view name);

/// Control-loop knobs. The shared loop parameters (`monitor_interval`,
/// `stale_factor`, `overshoot_margin`) moved here from ControllerOptions
/// (which keeps deprecated forwarding aliases); the rest parameterize the
/// individual engines.
struct PolicyOptions {
  EngineKind engine = EngineKind::kStatic;

  /// Cadence of the Controller's maintenance loop (prune stale members,
  /// ask the engine for recomposition/trim decisions).
  sim::SimTime monitor_interval = sim::SimTime::from_seconds(10);
  /// A member is presumed lost after this many missed heartbeat intervals.
  double stale_factor = 3.0;
  /// StaticPolicy: extra margin applied to the deficit/idle-pool ratio.
  /// BanditPolicy arms multiply on top of this baseline.
  double overshoot_margin = 1.0;

  /// Phi-driven job admission: jobs whose suitability
  /// Phi = delta * p / (s + r) falls below this are deferred instead of
  /// dispatched. 0 admits everything (the default — admission control is
  /// opt-in, so existing runs are untouched).
  double min_suitability = 0.0;

  // --- ProportionalPolicy ---------------------------------------------------
  /// Proportional gain on the deficit/idle-pool ratio. 1.0 aims the
  /// expected join count exactly at the deficit; the static policy's
  /// overshoot margin corresponds to a gain above 1.
  double gain = 1.0;
  /// Integral gain: each tick with a residual deficit accumulates this
  /// fraction of the error into a persistent boost, compensating churn
  /// and stale idle-pool entries without a fixed overshoot margin.
  double integral_gain = 0.3;
  /// Anti-windup clamp on the accumulated integral term (in probability
  /// units).
  double integral_cap = 0.5;
  /// Hard cap on any single wakeup probability the proportional engine
  /// requests (ramp limiting); 1.0 disables the cap.
  double max_step = 1.0;
  /// Fraction of the target size an instance may exceed before the
  /// proportional engine starts trimming (oscillation damping under
  /// churn); 0 trims everything over target, like the static policy.
  double trim_hysteresis = 0.0;

  // --- BanditPolicy ---------------------------------------------------------
  /// Arm set: multipliers applied to overshoot_margin * deficit / idle.
  std::vector<double> arms = {0.6, 0.85, 1.0, 1.15, 1.4};
  /// Epsilon-greedy exploration probability.
  double explore = 0.1;

  /// Seed of the policy's private RNG stream. 0 lets OddciSystem derive
  /// one from the system seed via util::stream_seed(seed,
  /// "control.policy") — a named stream disjoint from every population
  /// stream, so enabling an RNG-drawing policy never perturbs receiver
  /// seeding.
  std::uint64_t seed = 0;

  /// Throws std::invalid_argument on out-of-range knobs.
  void validate() const;
};

/// Per-instance telemetry snapshot the Controller hands the engine at each
/// decision point, built after the tick's full membership rebuild (prune +
/// aggregator failover), so the idle-pool estimate is never stale.
struct ControlObservation {
  sim::SimTime now;
  std::uint64_t instance = 0;
  /// Requested instance size n.
  std::size_t target = 0;
  /// Confirmed members (busy heartbeats within the staleness window).
  std::size_t members = 0;
  /// PNAs that accepted the wakeup and are still loading the image.
  std::size_t joining = 0;
  /// Windowed idle-pool estimate. Only populated (scanned) on the
  /// recruitment path; 0 in trim-side observations.
  std::size_t idle_pool = 0;
  /// All PNAs ever heard from.
  std::size_t known_pnas = 0;
  /// Members this tick's rebuild pruned from the instance (churn signal).
  std::size_t pruned_this_tick = 0;
  bool recruiting = true;
  sim::SimTime heartbeat_interval;
  sim::SimTime since_last_wakeup;
};

/// What the engine wants done this tick.
struct ControlAction {
  /// Wakeup probability for a (re)composition broadcast; nullopt or <= 0
  /// means "do not broadcast this tick".
  std::optional<double> probability;
  /// Confirmed members to shed via unicast heartbeat resets.
  std::size_t trim = 0;
};

/// Job parameters for Phi-driven admission.
struct AdmissionRequest {
  sim::SimTime now;
  std::size_t tasks = 0;
  double input_bits = 0.0;    ///< average per-task input s
  double result_bits = 0.0;   ///< average per-task result r
  double task_seconds = 0.0;  ///< average per-task time on the device, p
  util::BitRate delta;        ///< per-node direct-channel capacity
  /// Redundancy overhead factor of verified execution (dispatches per
  /// verified task, >= 1): the suitability Phi is divided by it, so a
  /// population that needs 2x replication halves its verified throughput
  /// in the admission signal. 1.0 (the default, and the value whenever
  /// verification is off) leaves Phi untouched.
  double verify_overhead = 1.0;
};

enum class Admission : std::uint8_t {
  kAdmit = 0,
  kDefer,  ///< suitability below the configured floor
};

/// Abstract decision engine. One instance per Controller; all calls arrive
/// from the control shard (single-threaded by construction).
class DecisionEngine {
 public:
  explicit DecisionEngine(PolicyOptions options);
  virtual ~DecisionEngine();

  DecisionEngine(const DecisionEngine&) = delete;
  DecisionEngine& operator=(const DecisionEngine&) = delete;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Probability for the first wakeup of a freshly created instance
  /// (observation has members = joining = 0).
  [[nodiscard]] virtual double initial_probability(
      const ControlObservation& observation) = 0;

  /// Per-tick decision for an active instance. Called on the recruitment
  /// path (deficit > 0, past the retransmit cooldown, idle pool > 0) and
  /// on the trim path (confirmed members above target).
  [[nodiscard]] virtual ControlAction decide(
      const ControlObservation& observation) = 0;

  /// Phi-driven admission: defer jobs whose suitability falls below
  /// `PolicyOptions::min_suitability`. The base implementation is shared
  /// by all engines; it draws no randomness and, with the default floor
  /// of 0, admits everything without touching metrics or the recorder.
  [[nodiscard]] virtual Admission admit(const AdmissionRequest& request);

  /// Instance torn down: drop any per-instance loop state.
  virtual void forget(std::uint64_t instance);

  /// Register this engine's metric cells under "control.*". The base
  /// registers the admission counters only when Phi admission is active,
  /// so a default static engine adds no cells (byte-identical snapshots
  /// vs. the pre-engine tree).
  virtual void link_metrics(obs::MetricsRegistry& registry);

  /// Attach a flight recorder for control.* events; nullptr detaches.
  /// The static engine never emits.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

  [[nodiscard]] const PolicyOptions& options() const { return options_; }

  /// Jobs admitted / deferred by the Phi gate (all engines).
  [[nodiscard]] std::uint64_t jobs_admitted() const {
    return jobs_admitted_.value();
  }
  [[nodiscard]] std::uint64_t jobs_deferred() const {
    return jobs_deferred_.value();
  }

 protected:
  PolicyOptions options_;
  obs::FlightRecorder* recorder_ = nullptr;
  obs::Counter jobs_admitted_;
  obs::Counter jobs_deferred_;
};

/// Instantiate the engine selected by `options.engine`.
[[nodiscard]] std::unique_ptr<DecisionEngine> make_engine(
    PolicyOptions options);

}  // namespace oddci::control

#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "obs/metrics.hpp"

/// Recycling pool for direct-channel messages.
///
/// The heartbeat storm is the highest-rate message stream in the system —
/// every PNA of a million-receiver population beats every interval — and
/// each beat used to be a fresh `make_shared`. `MessagePool` keeps a ring
/// of `shared_ptr<T>`: a slot whose use_count() has dropped back to 1
/// (nobody but the pool holds it — the network delivered it and every
/// handler let go) is *recycled in place* via `T::reset(...)`, reusing both
/// the object and its shared_ptr control block. Steady state allocates
/// nothing per message.
///
/// Safety is structural, not conventional: a message still referenced
/// anywhere (in flight on the network, retained by a handler) has
/// use_count() > 1 and is simply skipped — the pool falls back to a fresh
/// `make_shared` rather than ever mutating shared state.
///
/// `T` must derive from `net::Message` and provide `reset(args...)`
/// mirroring its constructor.
namespace oddci::net {

template <typename T>
class MessagePool {
 public:
  /// Capacity bounds the number of recyclable in-flight messages; a full
  /// ring degrades to plain allocation, never blocks.
  explicit MessagePool(std::size_t capacity = 4096)
      : ring_(capacity == 0 ? 1 : capacity) {}

  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;

  template <typename... Args>
  [[nodiscard]] std::shared_ptr<T> acquire(Args&&... args) {
    std::shared_ptr<T>& slot = ring_[cursor_];
    cursor_ = (cursor_ + 1) % ring_.size();
    if (!slot) {
      slot = std::make_shared<T>(std::forward<Args>(args)...);
      allocated_.inc();
      pooled_bytes_.inc(
          static_cast<std::uint64_t>(slot->wire_size().count() / 8));
      return slot;
    }
    if (slot.use_count() == 1) {
      // Under the sharded kernel the last foreign reference may have been
      // dropped by another worker thread (its control-block decrement is a
      // release); pair it with an acquire fence before mutating the object.
      std::atomic_thread_fence(std::memory_order_acquire);
      slot->reset(std::forward<Args>(args)...);
      reused_.inc();
      pooled_bytes_.inc(
          static_cast<std::uint64_t>(slot->wire_size().count() / 8));
      return slot;
    }
    // Slot still in flight: allocate off-ring (the ring keeps its claim).
    allocated_.inc();
    return std::make_shared<T>(std::forward<Args>(args)...);
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  [[nodiscard]] const obs::Counter& reused() const { return reused_; }
  [[nodiscard]] const obs::Counter& allocated() const { return allocated_; }
  [[nodiscard]] const obs::Counter& pooled_bytes() const {
    return pooled_bytes_;
  }

  /// Expose counters as `<prefix>.pool_reused`, `<prefix>.pool_allocated`
  /// and `<prefix>.pooled_bytes`. The pool must outlive snapshots.
  void link_metrics(obs::MetricsRegistry& registry,
                    const std::string& prefix) const {
    registry.link_counter(prefix + ".pool_reused", reused_);
    registry.link_counter(prefix + ".pool_allocated", allocated_);
    registry.link_counter(prefix + ".pooled_bytes", pooled_bytes_);
  }

 private:
  std::vector<std::shared_ptr<T>> ring_;
  std::size_t cursor_ = 0;
  obs::Counter reused_;
  obs::Counter allocated_;
  obs::Counter pooled_bytes_;  ///< wire bytes served from pooled slots
};

}  // namespace oddci::net

#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace oddci::net {

void Network::set_sharded(sim::ShardedSimulation* sharded) {
  if (!nodes_.empty()) {
    throw std::logic_error("Network: set_sharded before registering nodes");
  }
  sharded_ = sharded;
  const std::size_t k = sharded != nullptr ? sharded->shard_count() : 1;
  cells_.clear();
  cells_.resize(k);
  recorders_.assign(k, nullptr);
}

void Network::set_register_shard(std::uint32_t shard) {
  if (shard >= cells_.size()) {
    throw std::out_of_range("Network: register shard out of range");
  }
  register_shard_ = shard;
}

NodeId Network::register_endpoint(Endpoint* endpoint, const LinkSpec& spec) {
  if (endpoint == nullptr) {
    throw std::invalid_argument("Network: null endpoint");
  }
  if (spec.uplink.bps() <= 0.0 || spec.downlink.bps() <= 0.0) {
    throw std::invalid_argument("Network: link capacities must be > 0");
  }
  if (spec.latency < sim::SimTime::zero()) {
    throw std::invalid_argument("Network: negative latency");
  }
  const auto id = static_cast<NodeId>(nodes_.size());
  sim::Simulation& home = sim_of(register_shard_);
  nodes_.push_back(Node{endpoint, spec, home.now(), home.now()});
  node_shards_.push_back(register_shard_);
  return id;
}

Network::Node& Network::node_at(NodeId id) {
  if (id >= nodes_.size()) {
    throw std::out_of_range("Network: unknown node id");
  }
  return nodes_[id];
}

const Network::Node& Network::node_at(NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("Network: unknown node id");
  }
  return nodes_[id];
}

void Network::unregister_endpoint(NodeId id) { node_at(id).endpoint = nullptr; }

void Network::reattach_endpoint(NodeId id, Endpoint* endpoint) {
  if (endpoint == nullptr) {
    throw std::invalid_argument("Network: null endpoint on reattach");
  }
  node_at(id).endpoint = endpoint;
}

bool Network::attached(NodeId id) const {
  return node_at(id).endpoint != nullptr;
}

sim::SimTime Network::uplink_free_at(NodeId id) const {
  return node_at(id).uplink_busy_until;
}

double Network::uplink_backlog_seconds(NodeId id) const {
  const Node& node = node_at(id);
  const sim::SimTime now = sharded_ != nullptr
                               ? sharded_->shard(node_shards_[id]).now()
                               : simulation_.now();
  const sim::SimTime backlog = node.uplink_busy_until - now;
  return backlog > sim::SimTime::zero() ? backlog.seconds() : 0.0;
}

double Network::downlink_backlog_seconds(NodeId id) const {
  const Node& node = node_at(id);
  const sim::SimTime now = sharded_ != nullptr
                               ? sharded_->shard(node_shards_[id]).now()
                               : simulation_.now();
  const sim::SimTime backlog = node.downlink_busy_until - now;
  return backlog > sim::SimTime::zero() ? backlog.seconds() : 0.0;
}

NetworkStats Network::stats() const {
  NetworkStats s;
  for (const ShardCells& c : cells_) {
    s.messages_sent += c.messages_sent.value();
    s.messages_delivered += c.messages_delivered.value();
    s.messages_dropped += c.messages_dropped.value();
    s.bits_sent += static_cast<std::int64_t>(c.bits_sent.value());
    s.arrivals_scheduled += c.arrivals_scheduled.value();
    s.tracked_dropped += c.tracked_dropped.value();
    s.uplink_queue_dropped += c.uplink_queue_dropped.value();
    s.downlink_queue_dropped += c.downlink_queue_dropped.value();
    s.tracked_uplink_queue_dropped += c.tracked_uplink_queue_dropped.value();
    s.tracked_downlink_queue_dropped +=
        c.tracked_downlink_queue_dropped.value();
  }
  return s;
}

void Network::link_metrics(obs::MetricsRegistry& registry) const {
  registry.link_counter_fn("net.messages_sent", [this] {
    std::uint64_t total = 0;
    for (const ShardCells& c : cells_) total += c.messages_sent.value();
    return total;
  });
  registry.link_counter_fn("net.messages_delivered", [this] {
    std::uint64_t total = 0;
    for (const ShardCells& c : cells_) total += c.messages_delivered.value();
    return total;
  });
  registry.link_counter_fn("net.messages_dropped", [this] {
    std::uint64_t total = 0;
    for (const ShardCells& c : cells_) total += c.messages_dropped.value();
    return total;
  });
  registry.link_counter_fn("net.bits_sent", [this] {
    std::uint64_t total = 0;
    for (const ShardCells& c : cells_) total += c.bits_sent.value();
    return total;
  });
}

void Network::link_queue_metrics(obs::MetricsRegistry& registry) const {
  registry.link_counter_fn("net.uplink_queue_dropped", [this] {
    std::uint64_t total = 0;
    for (const ShardCells& c : cells_) total += c.uplink_queue_dropped.value();
    return total;
  });
  registry.link_counter_fn("net.downlink_queue_dropped", [this] {
    std::uint64_t total = 0;
    for (const ShardCells& c : cells_) {
      total += c.downlink_queue_dropped.value();
    }
    return total;
  });
}

void Network::set_recorder(obs::FlightRecorder* recorder) {
  for (auto& slot : recorders_) slot = recorder;
}

void Network::set_shard_recorder(std::size_t shard,
                                 obs::FlightRecorder* recorder) {
  if (shard >= recorders_.size()) {
    throw std::out_of_range("Network: recorder shard out of range");
  }
  recorders_[shard] = recorder;
}

void Network::send(NodeId from, NodeId to, MessagePtr message) {
  if (!message) {
    throw std::invalid_argument("Network: null message");
  }
  Node& src = node_at(from);
  node_at(to);  // validate destination id early

  const std::uint32_t src_shard = node_shards_[from];
  sim::Simulation& ssim = sim_of(src_shard);

  ShardCells& cells = cells_[src_shard];
  ++cells.messages_sent;

  // Bounded uplink queue: if the committed backlog already exceeds the
  // cap, the message is tail-dropped before entering the queue — it never
  // consumes serialization time or bits, and the interposer never sees it
  // (the loss happens at the sender, upstream of the wire). Deterministic:
  // no randomness, purely a function of the busy window.
  if (src.spec.uplink_queue > sim::SimTime::zero() &&
      src.uplink_busy_until - ssim.now() > src.spec.uplink_queue) {
    ++cells.uplink_queue_dropped;
    if (tracked_tag_ >= 0 && message->tag() == tracked_tag_) {
      ++cells.tracked_uplink_queue_dropped;
    }
    obs::FlightRecorder* recorder = recorders_[src_shard];
    if (recorder != nullptr) {
      recorder->emit(ssim.now(), obs::TraceEventKind::kQueueDropped,
                     obs::TraceComponent::kNetwork, {}, from,
                     static_cast<std::uint64_t>(message->tag()));
    }
    return;
  }

  SendInterposer::Action action;
  if (interposer_ != nullptr) {
    action = interposer_->on_send(from, to, *message, src_shard);
  }

  cells.bits_sent += static_cast<std::uint64_t>(message->wire_size().count());

  // Serialize on the sender's uplink (FIFO). This happens even for a
  // dropped message: the sender transmitted it; the loss is downstream.
  const double tx_up =
      util::transmission_seconds(message->wire_size(), src.spec.uplink);
  const sim::SimTime start = std::max(ssim.now(), src.uplink_busy_until);
  const sim::SimTime departed = start + sim::SimTime::from_seconds(tx_up);
  src.uplink_busy_until = departed;

  if (action.drop) return;

  const sim::SimTime arrival_at_edge =
      departed + src.spec.latency + action.extra_latency;
  if (action.duplicate) {
    schedule_arrival(arrival_at_edge, from, to, message);
  }
  schedule_arrival(arrival_at_edge, from, to, std::move(message));
}

void Network::schedule_arrival(sim::SimTime at, NodeId from, NodeId to,
                               MessagePtr message) {
  const std::uint32_t src_shard = node_shards_[from];
  const std::uint32_t dst_shard = node_shards_[to];
  ++cells_[src_shard].arrivals_scheduled;
  if (sharded_ != nullptr && dst_shard != src_shard) {
    // Cross-shard hop: through the kernel mailbox, landing at the first
    // window boundary >= the edge-arrival time.
    sharded_->post(
        src_shard, dst_shard, at,
        [this, from, to, dst_shard, message = std::move(message)]() mutable {
          arrive(from, to, dst_shard, std::move(message));
        });
    return;
  }
  sim_of(dst_shard).schedule_at(
      at,
      [this, from, to, dst_shard, message = std::move(message)]() mutable {
        arrive(from, to, dst_shard, std::move(message));
      },
      sim::EventPriority::kDelivery);
}

void Network::arrive(NodeId from, NodeId to, std::uint32_t dst_shard,
                     MessagePtr message) {
  // The receiver's downlink serialization is decided at edge-arrival time,
  // because its busy window depends on messages that arrive before ours.
  // Runs on (and only on) the destination's shard.
  sim::Simulation& dsim = sim_of(dst_shard);
  Node& dst = nodes_[to];
  // Bounded downlink queue: shed at edge arrival when the receiver's
  // committed backlog exceeds the cap (the message crossed the wire but
  // the access queue is full — classic tail drop).
  if (dst.spec.downlink_queue > sim::SimTime::zero() &&
      dst.downlink_busy_until - dsim.now() > dst.spec.downlink_queue) {
    ++cells_[dst_shard].downlink_queue_dropped;
    if (tracked_tag_ >= 0 && message->tag() == tracked_tag_) {
      ++cells_[dst_shard].tracked_downlink_queue_dropped;
    }
    obs::FlightRecorder* recorder = recorders_[dst_shard];
    if (recorder != nullptr) {
      recorder->emit(dsim.now(), obs::TraceEventKind::kQueueDropped,
                     obs::TraceComponent::kNetwork, {}, to,
                     static_cast<std::uint64_t>(message->tag()));
    }
    return;
  }
  const double tx_down =
      util::transmission_seconds(message->wire_size(), dst.spec.downlink);
  const sim::SimTime begin = std::max(dsim.now(), dst.downlink_busy_until);
  const sim::SimTime done = begin + sim::SimTime::from_seconds(tx_down);
  dst.downlink_busy_until = done;
  dsim.schedule_at(
      done,
      [this, from, to, dst_shard, message = std::move(message)] {
        Node& d = nodes_[to];
        if (d.endpoint == nullptr) {
          ++cells_[dst_shard].messages_dropped;
          if (tracked_tag_ >= 0 && message->tag() == tracked_tag_) {
            ++cells_[dst_shard].tracked_dropped;
          }
          obs::FlightRecorder* recorder = recorders_[dst_shard];
          if (recorder != nullptr) {
            recorder->emit(sim_of(dst_shard).now(),
                           obs::TraceEventKind::kMessageDropped,
                           obs::TraceComponent::kNetwork, {}, to,
                           static_cast<std::uint64_t>(message->tag()));
          }
          return;
        }
        ++cells_[dst_shard].messages_delivered;
        d.endpoint->on_message(from, message);
      },
      sim::EventPriority::kDelivery);
}

}  // namespace oddci::net

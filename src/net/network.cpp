#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace oddci::net {

NodeId Network::register_endpoint(Endpoint* endpoint, const LinkSpec& spec) {
  if (endpoint == nullptr) {
    throw std::invalid_argument("Network: null endpoint");
  }
  if (spec.uplink.bps() <= 0.0 || spec.downlink.bps() <= 0.0) {
    throw std::invalid_argument("Network: link capacities must be > 0");
  }
  if (spec.latency < sim::SimTime::zero()) {
    throw std::invalid_argument("Network: negative latency");
  }
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{endpoint, spec, simulation_.now(), simulation_.now()});
  return id;
}

Network::Node& Network::node_at(NodeId id) {
  if (id >= nodes_.size()) {
    throw std::out_of_range("Network: unknown node id");
  }
  return nodes_[id];
}

const Network::Node& Network::node_at(NodeId id) const {
  if (id >= nodes_.size()) {
    throw std::out_of_range("Network: unknown node id");
  }
  return nodes_[id];
}

void Network::unregister_endpoint(NodeId id) { node_at(id).endpoint = nullptr; }

void Network::reattach_endpoint(NodeId id, Endpoint* endpoint) {
  if (endpoint == nullptr) {
    throw std::invalid_argument("Network: null endpoint on reattach");
  }
  node_at(id).endpoint = endpoint;
}

bool Network::attached(NodeId id) const {
  return node_at(id).endpoint != nullptr;
}

sim::SimTime Network::uplink_free_at(NodeId id) const {
  return node_at(id).uplink_busy_until;
}

void Network::link_metrics(obs::MetricsRegistry& registry) const {
  registry.link_counter("net.messages_sent", messages_sent_);
  registry.link_counter("net.messages_delivered", messages_delivered_);
  registry.link_counter("net.messages_dropped", messages_dropped_);
  registry.link_counter("net.bits_sent", bits_sent_);
}

void Network::send(NodeId from, NodeId to, MessagePtr message) {
  if (!message) {
    throw std::invalid_argument("Network: null message");
  }
  Node& src = node_at(from);
  node_at(to);  // validate destination id early

  SendInterposer::Action action;
  if (interposer_ != nullptr) {
    action = interposer_->on_send(from, to, *message);
  }

  ++messages_sent_;
  bits_sent_ += static_cast<std::uint64_t>(message->wire_size().count());

  // Serialize on the sender's uplink (FIFO). This happens even for a
  // dropped message: the sender transmitted it; the loss is downstream.
  const double tx_up =
      util::transmission_seconds(message->wire_size(), src.spec.uplink);
  const sim::SimTime start =
      std::max(simulation_.now(), src.uplink_busy_until);
  const sim::SimTime departed = start + sim::SimTime::from_seconds(tx_up);
  src.uplink_busy_until = departed;

  if (action.drop) return;

  const sim::SimTime arrival_at_edge =
      departed + src.spec.latency + action.extra_latency;
  if (action.duplicate) {
    schedule_arrival(arrival_at_edge, from, to, message);
  }
  schedule_arrival(arrival_at_edge, from, to, std::move(message));
}

void Network::schedule_arrival(sim::SimTime at, NodeId from, NodeId to,
                               MessagePtr message) {
  // The receiver's downlink serialization is decided at edge-arrival time,
  // because its busy window depends on messages that arrive before ours.
  // Both hops capture {this, from, to, shared_ptr} = 32 bytes: within
  // EventFn's inline buffer, so the delivery path never heap-allocates.
  simulation_.schedule_at(
      at,
      [this, from, to, message = std::move(message)]() mutable {
        Node& dst = nodes_[to];
        const double tx_down =
            util::transmission_seconds(message->wire_size(),
                                       dst.spec.downlink);
        const sim::SimTime begin =
            std::max(simulation_.now(), dst.downlink_busy_until);
        const sim::SimTime done = begin + sim::SimTime::from_seconds(tx_down);
        dst.downlink_busy_until = done;
        simulation_.schedule_at(
            done,
            [this, from, to, message = std::move(message)] {
              Node& d = nodes_[to];
              if (d.endpoint == nullptr) {
                ++messages_dropped_;
                if (recorder_ != nullptr) {
                  recorder_->emit(
                      simulation_.now(),
                      obs::TraceEventKind::kMessageDropped,
                      obs::TraceComponent::kNetwork, {}, to,
                      static_cast<std::uint64_t>(message->tag()));
                }
                return;
              }
              ++messages_delivered_;
              d.endpoint->on_message(from, message);
            },
            sim::EventPriority::kDelivery);
      },
      sim::EventPriority::kDelivery);
}

}  // namespace oddci::net

#pragma once

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/sharded.hpp"
#include "sim/simulation.hpp"
#include "util/quantity.hpp"

/// Direct-channel substrate.
///
/// The paper's system model gives every set-top box an individual
/// full-duplex point-to-point channel of capacity delta linking it to both
/// the Controller and the Backend. We model each endpoint with an access
/// link: a FIFO uplink and a FIFO downlink, each with its own capacity and a
/// fixed propagation latency. A message sent from A to B is serialized on
/// A's uplink, propagates, then is serialized on B's downlink — so a
/// capacity-limited Controller can actually be congested by heartbeats
/// (exercised by bench_ablation_heartbeat).
///
/// Sharded kernel: every node belongs to one kernel shard (assigned at
/// registration). A node's uplink state is touched only by `send()` calls
/// made from its own shard's thread, and its downlink state only by the
/// arrival events that run on its shard, so link state needs no locking.
/// A send whose destination lives on another shard crosses through the
/// kernel's mailbox and lands at the next window boundary; traffic counters
/// are kept in per-shard cache-line-padded cells and merged at snapshot.
namespace oddci::net {

struct LinkSpec {
  util::BitRate uplink;    ///< endpoint -> network capacity
  util::BitRate downlink;  ///< network -> endpoint capacity
  sim::SimTime latency;    ///< one-way propagation delay
  /// Maximum queueing backlog tolerated per direction before deterministic
  /// tail drop, expressed as serialization time already committed (i.e.
  /// seconds of traffic queued ahead). Zero = unbounded (the legacy
  /// model, where a wakeup storm just stretches the busy window forever).
  sim::SimTime uplink_queue;
  sim::SimTime downlink_queue;
};

/// Point-in-time view of the network counters (see Network::stats()).
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;  ///< destination unregistered/offline
  std::int64_t bits_sent = 0;
  /// Copies actually scheduled toward a destination (a send that survives
  /// the interposer contributes one copy, or two when duplicated). The
  /// health auditor balances this against sent/lost/duplicated and against
  /// delivered/dropped.
  std::uint64_t arrivals_scheduled = 0;
  /// Detached-endpoint drops of tracked-tag messages (see set_tracked_tag).
  std::uint64_t tracked_dropped = 0;
  /// Tail drops at a bounded sender uplink queue (never scheduled) and at a
  /// bounded receiver downlink queue (scheduled but shed on edge arrival).
  /// Zero unless some LinkSpec sets a queue bound.
  std::uint64_t uplink_queue_dropped = 0;
  std::uint64_t downlink_queue_dropped = 0;
  /// The tracked-tag slices of the queue drops (heartbeat conservation).
  std::uint64_t tracked_uplink_queue_dropped = 0;
  std::uint64_t tracked_downlink_queue_dropped = 0;
};

/// Hook interposed on every Network::send (fault injection). The verdict is
/// rendered before the uplink is consumed: a dropped message still costs the
/// sender its serialization time (it was transmitted; the loss is
/// downstream), a duplicated one arrives twice, and extra latency stretches
/// the propagation leg only.
class SendInterposer {
 public:
  struct Action {
    bool drop = false;
    bool duplicate = false;
    sim::SimTime extra_latency;
  };

  virtual ~SendInterposer() = default;
  /// `src_shard` is the kernel shard whose thread is making the send (0 in
  /// the classic single-shard kernel); interposers that draw randomness
  /// must key their stream on it to stay race-free and deterministic.
  virtual Action on_send(NodeId from, NodeId to, const Message& message,
                         std::size_t src_shard) = 0;
};

class Network {
 public:
  explicit Network(sim::Simulation& simulation) : simulation_(simulation) {
    cells_.resize(1);
    recorders_.resize(1, nullptr);
  }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Attach the sharded kernel: node registrations gain shard homes (see
  /// set_register_shard) and cross-shard deliveries route through its
  /// mailboxes. Must be called before any endpoint registers, metrics
  /// link, or traffic flows; per-shard counter cells and recorder slots
  /// are (re)sized here.
  void set_sharded(sim::ShardedSimulation* sharded);

  /// Shard assigned to endpoints registered from now on (sticky; default
  /// 0). Construction is single-threaded, so a plain member suffices.
  void set_register_shard(std::uint32_t shard);

  [[nodiscard]] std::uint32_t shard_of(NodeId id) const {
    return node_shards_[id];
  }

  /// Pre-size the endpoint table. Building a million-receiver population
  /// registers endpoints one by one; without a hint the per-node link state
  /// is copied O(log n) times as the vector regrows.
  void reserve_endpoints(std::size_t capacity) {
    nodes_.reserve(capacity);
    node_shards_.reserve(capacity);
  }

  /// Register an endpoint. The pointer must outlive the Network or be
  /// detached with `unregister_endpoint`.
  NodeId register_endpoint(Endpoint* endpoint, const LinkSpec& spec);

  /// Detach an endpoint; in-flight messages to it are dropped on arrival.
  void unregister_endpoint(NodeId id);

  /// Re-attach a previously registered node (e.g. a set-top box switched
  /// back on). The endpoint pointer may differ from the original.
  void reattach_endpoint(NodeId id, Endpoint* endpoint);

  [[nodiscard]] bool attached(NodeId id) const;

  /// Send `message` from `from` to `to`. Serialization + propagation
  /// delays apply; delivery is an event with EventPriority::kDelivery.
  /// Under the sharded kernel this must be called from the thread running
  /// `from`'s shard (or between windows).
  void send(NodeId from, NodeId to, MessagePtr message);

  /// Snapshot of the traffic counters (merged over shards), by value.
  [[nodiscard]] NetworkStats stats() const;

  /// Expose the traffic counters under "net.*" in `registry`. The network
  /// must outlive any snapshot() call on the registry.
  void link_metrics(obs::MetricsRegistry& registry) const;

  /// Expose the bounded-queue drop counters under "net.*". Registered
  /// separately so configurations without queue bounds keep their metric
  /// set (and exports) byte-identical.
  void link_queue_metrics(obs::MetricsRegistry& registry) const;

  /// Attach a flight recorder for every shard: deliveries to detached
  /// endpoints (powered off receivers) are emitted as message.dropped
  /// events. nullptr detaches.
  void set_recorder(obs::FlightRecorder* recorder);

  /// Per-shard recorder (the sharded kernel gives each shard its own
  /// ring so emission stays lock-free).
  void set_shard_recorder(std::size_t shard, obs::FlightRecorder* recorder);

  /// Interpose `interposer` on every send (fault injection). nullptr
  /// detaches; with no interposer the send path is byte-identical to a
  /// build without the hook.
  void set_interposer(SendInterposer* interposer) { interposer_ = interposer; }

  /// Count detached-endpoint drops of messages with this tag separately
  /// (NetworkStats::tracked_dropped). The system sets the heartbeat tag so
  /// the health auditor can balance the heartbeat stream; -1 disables. The
  /// tag value crosses the layer as a plain int — net stays ignorant of
  /// core's message taxonomy.
  void set_tracked_tag(int tag) { tracked_tag_ = tag; }

  [[nodiscard]] std::size_t endpoint_count() const { return nodes_.size(); }

  /// Time at which `node`'s uplink frees up (diagnostics/backpressure).
  [[nodiscard]] sim::SimTime uplink_free_at(NodeId node) const;

  /// Current queueing backlog on `node`'s links, in seconds of committed
  /// serialization time (0 when the link is idle). Snapshot gauges for the
  /// return-channel health view; call between windows.
  [[nodiscard]] double uplink_backlog_seconds(NodeId node) const;
  [[nodiscard]] double downlink_backlog_seconds(NodeId node) const;

 private:
  struct Node {
    Endpoint* endpoint = nullptr;  // nullptr while detached
    LinkSpec spec;
    sim::SimTime uplink_busy_until;
    sim::SimTime downlink_busy_until;
  };

  /// Per-shard traffic counters, cache-line padded: sent/bits belong to the
  /// sending shard, delivered/dropped to the receiving one.
  struct alignas(64) ShardCells {
    obs::Counter messages_sent;
    obs::Counter messages_delivered;
    obs::Counter messages_dropped;
    obs::Counter bits_sent;
    obs::Counter arrivals_scheduled;  ///< incremented on the sending shard
    obs::Counter tracked_dropped;     ///< incremented on the receiving shard
    obs::Counter uplink_queue_dropped;          ///< sending shard
    obs::Counter downlink_queue_dropped;        ///< receiving shard
    obs::Counter tracked_uplink_queue_dropped;  ///< sending shard
    obs::Counter tracked_downlink_queue_dropped;  ///< receiving shard
  };

  Node& node_at(NodeId id);
  [[nodiscard]] const Node& node_at(NodeId id) const;

  [[nodiscard]] sim::Simulation& sim_of(std::uint32_t shard) {
    return sharded_ != nullptr ? sharded_->shard(shard) : simulation_;
  }

  /// Schedule the edge-arrival event: downlink serialization then delivery.
  void schedule_arrival(sim::SimTime at, NodeId from, NodeId to,
                        MessagePtr message);
  /// Edge arrival, running on the destination shard.
  void arrive(NodeId from, NodeId to, std::uint32_t dst_shard,
              MessagePtr message);

  sim::Simulation& simulation_;
  sim::ShardedSimulation* sharded_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> node_shards_;
  std::uint32_t register_shard_ = 0;
  std::vector<ShardCells> cells_;
  std::vector<obs::FlightRecorder*> recorders_;
  SendInterposer* interposer_ = nullptr;
  int tracked_tag_ = -1;
};

}  // namespace oddci::net

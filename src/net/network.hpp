#pragma once

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"
#include "util/quantity.hpp"

/// Direct-channel substrate.
///
/// The paper's system model gives every set-top box an individual
/// full-duplex point-to-point channel of capacity delta linking it to both
/// the Controller and the Backend. We model each endpoint with an access
/// link: a FIFO uplink and a FIFO downlink, each with its own capacity and a
/// fixed propagation latency. A message sent from A to B is serialized on
/// A's uplink, propagates, then is serialized on B's downlink — so a
/// capacity-limited Controller can actually be congested by heartbeats
/// (exercised by bench_ablation_heartbeat).
namespace oddci::net {

struct LinkSpec {
  util::BitRate uplink;    ///< endpoint -> network capacity
  util::BitRate downlink;  ///< network -> endpoint capacity
  sim::SimTime latency;    ///< one-way propagation delay
};

/// Point-in-time view of the network counters (see Network::stats()).
struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;  ///< destination unregistered/offline
  std::int64_t bits_sent = 0;
};

/// Hook interposed on every Network::send (fault injection). The verdict is
/// rendered before the uplink is consumed: a dropped message still costs the
/// sender its serialization time (it was transmitted; the loss is
/// downstream), a duplicated one arrives twice, and extra latency stretches
/// the propagation leg only.
class SendInterposer {
 public:
  struct Action {
    bool drop = false;
    bool duplicate = false;
    sim::SimTime extra_latency;
  };

  virtual ~SendInterposer() = default;
  virtual Action on_send(NodeId from, NodeId to, const Message& message) = 0;
};

class Network {
 public:
  explicit Network(sim::Simulation& simulation) : simulation_(simulation) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Pre-size the endpoint table. Building a million-receiver population
  /// registers endpoints one by one; without a hint the per-node link state
  /// is copied O(log n) times as the vector regrows.
  void reserve_endpoints(std::size_t capacity) { nodes_.reserve(capacity); }

  /// Register an endpoint. The pointer must outlive the Network or be
  /// detached with `unregister_endpoint`.
  NodeId register_endpoint(Endpoint* endpoint, const LinkSpec& spec);

  /// Detach an endpoint; in-flight messages to it are dropped on arrival.
  void unregister_endpoint(NodeId id);

  /// Re-attach a previously registered node (e.g. a set-top box switched
  /// back on). The endpoint pointer may differ from the original.
  void reattach_endpoint(NodeId id, Endpoint* endpoint);

  [[nodiscard]] bool attached(NodeId id) const;

  /// Send `message` from `from` to `to`. Serialization + propagation
  /// delays apply; delivery is an event with EventPriority::kDelivery.
  void send(NodeId from, NodeId to, MessagePtr message);

  /// Snapshot of the traffic counters, by value.
  [[nodiscard]] NetworkStats stats() const {
    return NetworkStats{messages_sent_.value(), messages_delivered_.value(),
                        messages_dropped_.value(),
                        static_cast<std::int64_t>(bits_sent_.value())};
  }

  /// Expose the traffic counters under "net.*" in `registry`. The network
  /// must outlive any snapshot() call on the registry.
  void link_metrics(obs::MetricsRegistry& registry) const;

  /// Attach a flight recorder: deliveries to detached endpoints (powered
  /// off receivers) are emitted as message.dropped events. nullptr
  /// detaches.
  void set_recorder(obs::FlightRecorder* recorder) { recorder_ = recorder; }

  /// Interpose `interposer` on every send (fault injection). nullptr
  /// detaches; with no interposer the send path is byte-identical to a
  /// build without the hook.
  void set_interposer(SendInterposer* interposer) { interposer_ = interposer; }

  [[nodiscard]] std::size_t endpoint_count() const { return nodes_.size(); }

  /// Time at which `node`'s uplink frees up (diagnostics/backpressure).
  [[nodiscard]] sim::SimTime uplink_free_at(NodeId node) const;

 private:
  struct Node {
    Endpoint* endpoint = nullptr;  // nullptr while detached
    LinkSpec spec;
    sim::SimTime uplink_busy_until;
    sim::SimTime downlink_busy_until;
  };

  Node& node_at(NodeId id);
  [[nodiscard]] const Node& node_at(NodeId id) const;

  /// Schedule the edge-arrival event: downlink serialization then delivery.
  void schedule_arrival(sim::SimTime at, NodeId from, NodeId to,
                        MessagePtr message);

  sim::Simulation& simulation_;
  std::vector<Node> nodes_;
  obs::Counter messages_sent_;
  obs::Counter messages_delivered_;
  obs::Counter messages_dropped_;
  obs::Counter bits_sent_;
  obs::FlightRecorder* recorder_ = nullptr;
  SendInterposer* interposer_ = nullptr;
};

}  // namespace oddci::net

#pragma once

#include <cstdint>
#include <memory>

#include "util/quantity.hpp"

/// Message abstraction for the direct (one-to-one) channels.
namespace oddci::net {

/// Dense endpoint address assigned by the Network at registration.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

/// Base class for all direct-channel messages. Concrete protocol messages
/// (heartbeats, task requests, results, ...) derive from this; the network
/// layer only needs the wire size for serialization-delay modelling.
class Message {
 public:
  virtual ~Message() = default;

  /// Wire size, including any header overhead the protocol accounts for.
  [[nodiscard]] virtual util::Bits wire_size() const = 0;

  /// Small integer tag for cheap dispatch without RTTI on hot paths.
  /// Tag spaces are defined by the protocol layer (see core/messages.hpp).
  [[nodiscard]] virtual int tag() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

/// Receiver interface registered with the Network.
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void on_message(NodeId from, const MessagePtr& message) = 0;
};

}  // namespace oddci::net
